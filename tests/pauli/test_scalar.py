"""Ring axioms and canonical form of Z[1/sqrt(2)]."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli.scalar import SqrtTwoRational

elements = st.builds(
    SqrtTwoRational,
    st.integers(-20, 20),
    st.integers(-20, 20),
    st.integers(0, 4),
)


class TestBasics:
    def test_canonical_form_reduces(self):
        assert SqrtTwoRational(2, 4, 1) == SqrtTwoRational(1, 2, 0)

    def test_inv_sqrt2_squares_to_half(self):
        half = SqrtTwoRational.inv_sqrt2() * SqrtTwoRational.inv_sqrt2()
        assert half == SqrtTwoRational(1, 0, 1)
        assert math.isclose(float(half), 0.5)

    def test_sqrt2_squared_is_two(self):
        assert SqrtTwoRational.sqrt2() * SqrtTwoRational.sqrt2() == SqrtTwoRational.from_int(2)

    def test_zero_and_one(self):
        assert SqrtTwoRational.zero().is_zero()
        assert SqrtTwoRational.one().is_one()
        assert not SqrtTwoRational.one().is_zero()

    def test_subtraction(self):
        assert (SqrtTwoRational.from_int(3) - SqrtTwoRational.from_int(3)).is_zero()

    def test_repr_is_readable(self):
        assert "sqrt2" in repr(SqrtTwoRational.inv_sqrt2())


class TestRingAxioms:
    @settings(max_examples=100, deadline=None)
    @given(elements, elements)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @settings(max_examples=100, deadline=None)
    @given(elements, elements)
    def test_multiplication_commutes(self, a, b):
        assert a * b == b * a

    @settings(max_examples=100, deadline=None)
    @given(elements, elements, elements)
    def test_distributivity(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @settings(max_examples=100, deadline=None)
    @given(elements)
    def test_additive_inverse(self, a):
        assert (a + (-a)).is_zero()

    @settings(max_examples=100, deadline=None)
    @given(elements, elements)
    def test_float_embedding_is_homomorphic(self, a, b):
        assert math.isclose(float(a * b), float(a) * float(b), rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(float(a + b), float(a) + float(b), rel_tol=1e-9, abs_tol=1e-9)
