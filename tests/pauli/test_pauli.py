"""Tests for concrete Pauli operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli.pauli import PauliOperator, pauli_from_label, single_qubit_pauli

labels = st.text(alphabet="IXYZ", min_size=1, max_size=5)


class TestConstruction:
    def test_from_label(self):
        op = PauliOperator.from_label("XIZ")
        assert op.x == (1, 0, 0)
        assert op.z == (0, 0, 1)

    def test_from_sparse(self):
        op = PauliOperator.from_sparse(4, {1: "Y", 3: "Z"})
        assert op.label() == "IYIZ"

    def test_from_sparse_out_of_range(self):
        with pytest.raises(ValueError):
            PauliOperator.from_sparse(2, {5: "X"})

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            PauliOperator.from_label("XQ")

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PauliOperator((1,), (0, 0))

    def test_pauli_from_label_signs(self):
        assert pauli_from_label("-X").phase == 2
        assert pauli_from_label("iY").label() == "iY"
        assert pauli_from_label("+Z") == PauliOperator.from_label("Z")

    def test_single_qubit_pauli(self):
        assert single_qubit_pauli(3, 1, "X").label() == "IXI"


class TestAlgebra:
    def test_xz_is_minus_iy(self):
        X = PauliOperator.from_label("X")
        Z = PauliOperator.from_label("Z")
        assert (X * Z).label() == "-iY"
        assert (Z * X).label() == "iY"

    def test_self_inverse(self):
        for label in ["X", "Y", "Z", "XYZ", "ZZXY"]:
            op = PauliOperator.from_label(label)
            assert (op * op).label() == "I" * op.num_qubits

    def test_weight(self):
        assert PauliOperator.from_label("IXYI").weight == 2

    def test_commutation(self):
        assert not PauliOperator.from_label("X").commutes_with(PauliOperator.from_label("Z"))
        assert PauliOperator.from_label("XX").commutes_with(PauliOperator.from_label("ZZ"))

    def test_adjoint_of_hermitian(self):
        op = PauliOperator.from_label("XYZ")
        assert op.adjoint() == op

    def test_negation(self):
        op = PauliOperator.from_label("Z")
        assert (-op).label() == "-Z"
        assert (-(-op)) == op

    def test_symplectic_roundtrip(self):
        op = PauliOperator.from_label("XZYI")
        assert PauliOperator.from_symplectic(op.symplectic_vector(), op.phase) == op


class TestDenseMatrix:
    def test_y_matrix(self):
        assert np.allclose(
            PauliOperator.from_label("Y").to_matrix(), np.array([[0, -1j], [1j, 0]])
        )

    def test_product_matches_matrix_product(self):
        a = PauliOperator.from_label("XZ")
        b = PauliOperator.from_label("YY")
        assert np.allclose((a * b).to_matrix(), a.to_matrix() @ b.to_matrix())

    def test_hermiticity(self):
        op = PauliOperator.from_label("XYZY")
        matrix = op.to_matrix()
        assert op.is_hermitian()
        assert np.allclose(matrix, matrix.conj().T)


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(labels, labels)
    def test_product_matrix_homomorphism(self, left, right):
        size = max(len(left), len(right))
        a = PauliOperator.from_label(left.ljust(size, "I"))
        b = PauliOperator.from_label(right.ljust(size, "I"))
        assert np.allclose((a * b).to_matrix(), a.to_matrix() @ b.to_matrix())

    @settings(max_examples=80, deadline=None)
    @given(labels, labels)
    def test_commutation_matches_matrices(self, left, right):
        size = max(len(left), len(right))
        a = PauliOperator.from_label(left.ljust(size, "I"))
        b = PauliOperator.from_label(right.ljust(size, "I"))
        commutator = a.to_matrix() @ b.to_matrix() - b.to_matrix() @ a.to_matrix()
        assert a.commutes_with(b) == np.allclose(commutator, 0)

    @settings(max_examples=50, deadline=None)
    @given(labels)
    def test_weight_counts_non_identity(self, label):
        op = PauliOperator.from_label(label)
        assert op.weight == sum(1 for ch in label if ch != "I")
