"""Conjugation tables checked against dense matrices."""

import numpy as np
import pytest

from repro.pauli.clifford import (
    CLIFFORD_1Q,
    CLIFFORD_2Q,
    backward_images,
    conjugate_pauli,
    forward_images,
)
from repro.pauli.pauli import PauliOperator
from repro.semantics.dense import GATE_MATRICES


def lift(gate, qubits, num_qubits):
    from repro.semantics.dense import DenseSimulator

    return DenseSimulator(num_qubits)._lift(gate, qubits)


@pytest.mark.parametrize("gate", CLIFFORD_1Q)
@pytest.mark.parametrize("label", ["X", "Y", "Z"])
def test_single_qubit_forward_matches_matrices(gate, label):
    operator = PauliOperator.from_label(label)
    unitary = GATE_MATRICES[gate]
    result = conjugate_pauli(operator, gate, (0,), "forward")
    assert np.allclose(result.to_matrix(), unitary @ operator.to_matrix() @ unitary.conj().T)


@pytest.mark.parametrize("gate", CLIFFORD_1Q)
@pytest.mark.parametrize("label", ["X", "Y", "Z"])
def test_single_qubit_backward_matches_matrices(gate, label):
    operator = PauliOperator.from_label(label)
    unitary = GATE_MATRICES[gate]
    result = conjugate_pauli(operator, gate, (0,), "backward")
    assert np.allclose(result.to_matrix(), unitary.conj().T @ operator.to_matrix() @ unitary)


@pytest.mark.parametrize("gate", CLIFFORD_2Q)
@pytest.mark.parametrize(
    "label", ["XI", "IX", "YI", "IY", "ZI", "IZ", "XZ", "YY", "ZX"]
)
@pytest.mark.parametrize("direction", ["forward", "backward"])
def test_two_qubit_conjugation_matches_matrices(gate, label, direction):
    operator = PauliOperator.from_label(label)
    unitary = GATE_MATRICES[gate]
    result = conjugate_pauli(operator, gate, (0, 1), direction)
    if direction == "forward":
        expected = unitary @ operator.to_matrix() @ unitary.conj().T
    else:
        expected = unitary.conj().T @ operator.to_matrix() @ unitary
    assert np.allclose(result.to_matrix(), expected)


def test_forward_backward_are_inverse():
    for gate in CLIFFORD_1Q:
        for label in ["X", "Y", "Z"]:
            op = PauliOperator.from_label(label)
            roundtrip = conjugate_pauli(
                conjugate_pauli(op, gate, (0,), "forward"), gate, (0,), "backward"
            )
            assert roundtrip == op
    for gate in CLIFFORD_2Q:
        for label in ["XI", "IZ", "YX"]:
            op = PauliOperator.from_label(label)
            roundtrip = conjugate_pauli(
                conjugate_pauli(op, gate, (0, 1), "forward"), gate, (0, 1), "backward"
            )
            assert roundtrip == op


def test_wp_rule_table_matches_paper():
    """Spot-check the transcription of Fig. 3 substitution rules."""
    # (U-S): X -> -Y.
    assert backward_images("S")["X"] == (-1, ("Y",))
    # (U-H): X -> Z, Z -> X.
    assert backward_images("H")["X"] == (1, ("Z",))
    assert backward_images("H")["Z"] == (1, ("X",))
    # (U-CNOT): Z_j -> Z_i Z_j.
    assert backward_images("CNOT")[("Z", 1)] == (1, ("Z", "Z"))
    # (U-iSWAP): Z_i -> Z_j.
    assert backward_images("ISWAP")[("Z", 0)] == (1, ("I", "Z"))


def test_conjugation_on_untouched_qubits_is_identity():
    op = PauliOperator.from_label("XIZ")
    result = conjugate_pauli(op, "H", (1,), "forward")
    assert result == op


def test_unknown_gate_rejected():
    with pytest.raises(ValueError):
        conjugate_pauli(PauliOperator.from_label("X"), "TOFFOLI", (0,))


def test_two_qubit_gate_needs_distinct_qubits():
    with pytest.raises(ValueError):
        conjugate_pauli(PauliOperator.from_label("XX"), "CNOT", (1, 1))


def test_forward_images_case_insensitive():
    assert forward_images("CNOT") == forward_images("cnot")
