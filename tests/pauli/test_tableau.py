"""Stabilizer tableau simulator tests (the Stim substitute)."""

import pytest

from repro.codes import steane_code
from repro.decoders import LookupDecoder
from repro.pauli.pauli import PauliOperator
from repro.pauli.tableau import StabilizerTableau


class TestBasics:
    def test_initial_state_is_all_zero(self):
        tableau = StabilizerTableau(3)
        for qubit in range(3):
            assert tableau.measure_z(qubit) == 0

    def test_x_flips_measurement(self):
        tableau = StabilizerTableau(2)
        tableau.apply_gate("X", 1)
        assert tableau.measure_z(0) == 0
        assert tableau.measure_z(1) == 1

    def test_bell_state_correlations(self):
        tableau = StabilizerTableau(2, seed=1)
        tableau.apply_gate("H", 0)
        tableau.apply_gate("CNOT", 0, 1)
        assert tableau.is_stabilized_by(PauliOperator.from_label("XX"))
        assert tableau.is_stabilized_by(PauliOperator.from_label("ZZ"))
        assert tableau.expectation(PauliOperator.from_label("ZI")) == 0
        first = tableau.measure_z(0)
        assert tableau.measure_z(1) == first

    def test_forced_outcome(self):
        tableau = StabilizerTableau(1)
        tableau.apply_gate("H", 0)
        assert tableau.measure_z(0, forced_outcome=1) == 1
        assert tableau.measure_z(0) == 1

    def test_reset(self):
        tableau = StabilizerTableau(1, seed=3)
        tableau.apply_gate("X", 0)
        tableau.reset_qubit(0)
        assert tableau.measure_z(0) == 0

    def test_rejects_non_clifford(self):
        with pytest.raises(ValueError):
            StabilizerTableau(1).apply_gate("T", 0)

    def test_rejects_bad_qubit(self):
        with pytest.raises(ValueError):
            StabilizerTableau(2).apply_gate("X", 5)

    def test_copy_is_independent(self):
        tableau = StabilizerTableau(1, seed=0)
        clone = tableau.copy()
        tableau.apply_gate("X", 0)
        assert clone.measure_z(0) == 0
        assert tableau.measure_z(0) == 1


class TestErrorInjection:
    def test_pauli_error_flips_signs_only(self):
        tableau = StabilizerTableau(2, seed=0)
        before = [op.label().lstrip("-") for op in tableau.stabilizers]
        tableau.apply_error(0, "X")
        after = [op.label().lstrip("-") for op in tableau.stabilizers]
        assert before == after
        assert tableau.measure_z(0) == 1

    def test_y_error_detected_by_both_checks(self):
        code = steane_code()
        tableau = StabilizerTableau(7, seed=0)
        # Prepare the logical |0> by measuring all generators and Z_L, forcing +1 outcomes.
        for generator in code.stabilizers:
            tableau.measure_pauli(generator, forced_outcome=0)
        tableau.measure_pauli(code.logical_zs[0], forced_outcome=0)
        tableau.apply_error(3, "Y")
        syndrome = tuple(tableau.measure_pauli(g) for g in code.stabilizers)
        assert any(syndrome[:3]) and any(syndrome[3:])


class TestCodeCycle:
    @pytest.mark.parametrize("qubit", range(7))
    @pytest.mark.parametrize("pauli", ["X", "Y", "Z"])
    def test_steane_corrects_every_single_error(self, qubit, pauli):
        """A full sampled error-correction cycle on the tableau simulator."""
        code = steane_code()
        decoder = LookupDecoder(code)
        tableau = StabilizerTableau(7, seed=qubit)
        for generator in code.stabilizers:
            tableau.measure_pauli(generator, forced_outcome=0)
        tableau.measure_pauli(code.logical_zs[0], forced_outcome=0)
        tableau.apply_error(qubit, pauli)
        syndrome = tuple(tableau.measure_pauli(g) for g in code.stabilizers)
        correction = decoder.decode(syndrome)
        assert correction is not None
        tableau.apply_pauli(correction)
        assert tableau.is_stabilized_by(code.logical_zs[0])
        for generator in code.stabilizers:
            assert tableau.is_stabilized_by(generator)
