"""The dynamic sanitizer: entry guards, lock-held asserts, loop watchdog.

These tests arm the sanitizer explicitly (monkeypatching ``ENABLED``), so
they pass both in the plain suite and in the REPRO_SANITIZE=1 CI job.
"""

import asyncio
import threading
import time

import pytest

from repro import sanitize
from repro.classical.expr import BoolVar
from repro.smt.interface import SolveSession


def test_entry_guard_reentrant_for_owner():
    guard = sanitize.EntryGuard("test")
    with guard:
        with guard:
            pass
    with guard:  # fully released after nested exit
        pass


def test_entry_guard_detects_concurrent_entry():
    guard = sanitize.EntryGuard("test")
    entered = threading.Event()
    release = threading.Event()

    def occupant():
        with guard:
            entered.set()
            release.wait(5)

    thread = threading.Thread(target=occupant)
    thread.start()
    try:
        assert entered.wait(5)
        with pytest.raises(sanitize.SanitizerError, match="concurrent entry"):
            guard.__enter__()
    finally:
        release.set()
        thread.join()
    with guard:  # usable again once the occupant left
        pass


def test_session_guard_armed_only_when_enabled(monkeypatch):
    monkeypatch.setattr(sanitize, "ENABLED", False)
    assert SolveSession()._entry_guard is None
    monkeypatch.setattr(sanitize, "ENABLED", True)
    assert SolveSession()._entry_guard is not None


def test_session_check_raises_on_concurrent_entry(monkeypatch):
    monkeypatch.setattr(sanitize, "ENABLED", True)
    session = SolveSession(BoolVar("x"))
    entered = threading.Event()
    release = threading.Event()

    def occupant():
        with session._entry_guard:
            entered.set()
            release.wait(5)

    thread = threading.Thread(target=occupant)
    thread.start()
    try:
        assert entered.wait(5)
        with pytest.raises(sanitize.SanitizerError):
            session.check()
    finally:
        release.set()
        thread.join()
    assert session.check().status == "sat"  # session stays usable


def test_assert_lock_held(monkeypatch):
    monkeypatch.setattr(sanitize, "ENABLED", True)
    rlock = threading.RLock()
    with pytest.raises(sanitize.SanitizerError):
        sanitize.assert_lock_held(rlock, "registry mutation")
    with rlock:
        sanitize.assert_lock_held(rlock, "registry mutation")
    lock = threading.Lock()
    with pytest.raises(sanitize.SanitizerError):
        sanitize.assert_lock_held(lock, "registry mutation")
    with lock:
        sanitize.assert_lock_held(lock, "registry mutation")


def test_assert_lock_held_noop_when_disabled(monkeypatch):
    monkeypatch.setattr(sanitize, "ENABLED", False)
    sanitize.assert_lock_held(threading.Lock(), "never checked")


def test_engine_lane_lock_assert_fires(monkeypatch):
    from repro.api.engine import Engine

    monkeypatch.setattr(sanitize, "ENABLED", True)
    engine = Engine()
    try:
        with pytest.raises(sanitize.SanitizerError, match="lane"):
            # Bypassing _execute means no lane lock is held — exactly the
            # misuse the dynamic check exists to catch.
            engine._execute_on_lane(object(), engine.backend)
    finally:
        engine.close()


def _loop_in_thread():
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    return loop, thread


def test_watchdog_counts_a_blocked_loop():
    loop, thread = _loop_in_thread()
    watchdog = sanitize.LoopWatchdog(loop, threshold=0.2, interval=0.05).start()
    try:
        loop.call_soon_threadsafe(time.sleep, 0.8)  # deliberately block it
        deadline = time.monotonic() + 5.0
        while watchdog.stalls == 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert watchdog.stalls >= 1
    finally:
        watchdog.stop()
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()


def test_watchdog_quiet_on_healthy_loop():
    loop, thread = _loop_in_thread()
    watchdog = sanitize.LoopWatchdog(loop, threshold=1.0, interval=0.05).start()
    try:
        time.sleep(0.4)
        assert watchdog.beats > 0
        assert watchdog.stalls == 0
    finally:
        watchdog.stop()
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()


def test_service_arms_watchdog_under_sanitize(monkeypatch):
    monkeypatch.setattr(sanitize, "ENABLED", True)

    async def scenario():
        from repro.service.server import VerificationService

        service = VerificationService(port=0)
        await service.start()
        try:
            assert service._watchdog is not None
            assert service._watchdog.loop is asyncio.get_running_loop()
        finally:
            await service.shutdown()
        assert service._watchdog is None

    asyncio.run(scenario())
