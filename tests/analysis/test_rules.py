"""Per-rule fixture tests: each rule catches its seeded violation and
passes its clean twin; suppression comments waive findings."""

from pathlib import Path

import pytest

from repro.analysis import Analyzer
from repro.analysis.core import SourceFile, parse_suppressions
from repro.analysis.engine import PARSE_RULE_ID

FIXTURES = Path(__file__).parent / "fixtures"

CASES = [
    ("lock_bad.py", "lock_clean.py", "REPRO-LOCK", 4),
    ("affinity_bad.py", "affinity_clean.py", "REPRO-SESSION", 3),
    ("async_bad.py", "async_clean.py", "REPRO-ASYNC", 3),
    ("stats_bad.py", "stats_clean.py", "REPRO-STATS", 4),
    ("events_bad.py", "events_clean.py", "REPRO-EVENT", 3),
    ("exc_bad.py", "exc_clean.py", "REPRO-EXC", 3),
]


def analyze(*names):
    return Analyzer().analyze_paths([FIXTURES / name for name in names])


@pytest.mark.parametrize("bad, clean, rule_id, count", CASES)
def test_rule_catches_seeded_violation(bad, clean, rule_id, count):
    findings = analyze(bad)
    assert findings, f"{bad} should produce findings"
    assert {f.rule_id for f in findings} == {rule_id}
    assert len(findings) == count


@pytest.mark.parametrize("bad, clean, rule_id, count", CASES)
def test_rule_passes_clean_twin(bad, clean, rule_id, count):
    assert analyze(clean) == []


def test_bad_fixtures_analyzed_together_keep_their_rules():
    findings = analyze(*[case[0] for case in CASES])
    assert {f.rule_id for f in findings} == {case[2] for case in CASES}


def test_suppression_comment_waives_the_finding():
    assert analyze("suppressed_ok.py") == []


def test_suppression_is_rule_specific():
    text = (FIXTURES / "suppressed_ok.py").read_text()
    wrong_rule = text.replace("allow[REPRO-LOCK]", "allow[REPRO-ASYNC]")
    source = SourceFile(FIXTURES / "suppressed_ok.py", text=wrong_rule)
    findings = Analyzer().analyze_files([source])
    assert [f.rule_id for f in findings] == ["REPRO-LOCK"]


def test_suppression_on_standalone_comment_covers_next_line():
    table = parse_suppressions([
        "# repro: allow[REPRO-LOCK] reason",
        "self._cache[k] = v",
        "x = 1  # repro: allow[REPRO-STATS]",
    ])
    assert table == {2: {"REPRO-LOCK"}, 3: {"REPRO-STATS"}}


def test_wildcard_suppression_waives_every_rule():
    text = (FIXTURES / "lock_bad.py").read_text().replace(
        "self._job_counter += 1  # BAD: outside _submit_lock",
        "self._job_counter += 1  # repro: allow[*]",
    )
    source = SourceFile(FIXTURES / "lock_bad.py", text=text)
    findings = Analyzer().analyze_files([source])
    assert all(f.line != text.splitlines().index(
        "        self._job_counter += 1  # repro: allow[*]") + 1 for f in findings)
    assert len(findings) == 3  # one of the four seeded violations waived


def test_unparsable_file_reports_parse_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def unclosed(:\n")
    findings = Analyzer().analyze_paths([bad])
    assert [f.rule_id for f in findings] == [PARSE_RULE_ID]


def test_lock_rule_ignores_unregistered_classes(tmp_path):
    snippet = tmp_path / "other.py"
    snippet.write_text(
        "class Unrelated:\n"
        "    def bump(self):\n"
        "        self._hits += 1\n"
    )
    assert Analyzer().analyze_paths([snippet]) == []


def test_async_rule_exempts_nested_sync_defs(tmp_path):
    snippet = tmp_path / "nested.py"
    snippet.write_text(
        "import time\n"
        "async def outer(loop):\n"
        "    def blocking():\n"
        "        time.sleep(1)\n"
        "    return await loop.run_in_executor(None, blocking)\n"
    )
    assert Analyzer().analyze_paths([snippet]) == []
