"""Self-check: the analyzer is clean on the repository's own src tree,
fast enough for CI, and wired into the ``python -m repro`` CLI."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.analysis import Analyzer
from repro.analysis.rules import DEFAULT_RULES

REPO_ROOT = Path(__file__).parents[2]
SRC = REPO_ROOT / "src"
FIXTURES = Path(__file__).parent / "fixtures"


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "analyze", *argv],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=120,
    )


def test_src_tree_is_clean_at_head():
    findings = Analyzer().analyze_paths([SRC])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_analyzer_wall_clock_under_ten_seconds():
    start = time.perf_counter()
    Analyzer().analyze_paths([SRC])
    assert time.perf_counter() - start < 10.0


def test_cli_exits_zero_on_clean_tree():
    proc = run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_exits_nonzero_on_each_seeded_fixture():
    for fixture in sorted(FIXTURES.glob("*_bad.py")):
        if fixture.name.startswith("suppressed"):
            continue
        proc = run_cli(str(fixture))
        assert proc.returncode == 1, f"{fixture.name}: {proc.stdout}"
        assert fixture.name in proc.stdout


def test_cli_json_output_is_structured():
    proc = run_cli(str(FIXTURES / "lock_bad.py"), "--json")
    assert proc.returncode == 1
    findings = json.loads(proc.stdout)
    assert findings and all(f["rule"] == "REPRO-LOCK" for f in findings)
    assert {"path", "line", "col", "rule", "message"} <= set(findings[0])


def test_cli_list_rules_names_the_rule_set():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in DEFAULT_RULES:
        assert rule.rule_id in proc.stdout
    assert len(DEFAULT_RULES) >= 5
