"""Clean twin of stats_bad: the counter is threaded through every layer."""

from dataclasses import dataclass


@dataclass
class SolverResult:
    satisfiable: bool = False
    conflicts: int = 0
    decisions: int = 0
    new_counter: int = 0


@dataclass
class SMTCheck:
    status: str = "unsat"
    conflicts: int = 0
    decisions: int = 0
    new_counter: int = 0


@dataclass
class SolverStats:
    conflicts: int = 0
    decisions: int = 0
    new_counter: int = 0


class SolveSession:
    def stats(self):
        return {
            "conflicts": 0,
            "decisions": 0,
            "new_counter": 0,
        }


def emit_site(check, emit):
    emit(SolverStats(
        conflicts=check.conflicts,
        decisions=check.decisions,
        new_counter=check.new_counter,
    ))
