"""Clean twin of lock_bad: every registry mutation is under its lock."""

import threading


class Engine:
    def __init__(self):
        self._cache_lock = threading.Lock()
        self._submit_lock = threading.Lock()
        self._cache = {}
        self._hits = 0
        self._misses = 0
        self._uncacheable = 0
        self._job_counter = 0

    def lookup(self, key):
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                return cached
            self._misses += 1
            self._cache[key] = object()
            return self._cache[key]

    def next_job_id(self):
        with self._submit_lock:
            self._job_counter += 1
            return f"job-{self._job_counter}"


class PoolManager:
    def __init__(self):
        self._lock = threading.RLock()
        self._sessions = {}
        self._busy = {}

    def evict(self, key):
        with self._lock:
            self._sessions.pop(key, None)
