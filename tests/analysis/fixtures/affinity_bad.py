"""Seeded REPRO-SESSION violations: direct session use from an
unmediated module (this file does not live under an allowlisted path)."""

from repro.smt.interface import SolveSession  # BAD: import of a session type


def sneaky_check(formula, context):
    session = SolveSession(formula)  # BAD: constructs a session directly
    session.check()
    return context.session.check()  # BAD: reaches through .session
