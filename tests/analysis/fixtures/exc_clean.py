"""Clean twin: broad handlers that re-raise, log, count, or are waived."""

import logging

log = logging.getLogger("fixture")


class Worker:
    def __init__(self):
        self.errors = 0

    def counted(self, task):
        try:
            task.run()
        except Exception:  # counted: surfaces in stats
            self.errors += 1

    def logged(self, task):
        try:
            task.run()
        except Exception:
            log.warning("task failed", exc_info=True)

    def reraised(self, task):
        try:
            task.run()
        except Exception as error:
            raise RuntimeError("task failed") from error

    def specific(self, conn):
        try:
            conn.close()
        except OSError:  # specific type: not a broad handler
            pass

    def waived(self, conn):
        try:
            conn.close()
        except Exception:  # repro: allow[REPRO-EXC] - teardown best effort
            pass
