"""Seeded REPRO-EXC violations: broad handlers that swallow silently."""

import logging

log = logging.getLogger("fixture")


def bare_swallow(conn):
    try:
        conn.close()
    except:  # noqa: E722  BAD: bare except, nothing visible happens
        pass


def broad_swallow(payload):
    try:
        return payload.decode()
    except Exception:  # BAD: swallowed, caller sees None with no trace
        return None


def tuple_swallow(task):
    try:
        task.run()
    except (ValueError, Exception):  # BAD: the tuple still catches everything
        task.result = "unknown"
