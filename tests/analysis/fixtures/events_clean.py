"""Clean twin of events_bad: fields and schema agree in both directions."""

from dataclasses import dataclass
from typing import ClassVar


@dataclass
class Event:
    job_id: str = ""
    seq: int = -1

    TYPE: ClassVar[str] = "Event"


@dataclass
class ProbeEvent(Event):
    bound: int = 0
    extra: str = ""

    TYPE: ClassVar[str] = "ProbeEvent"


EVENT_SCHEMAS = {
    "ProbeEvent": {
        "bound": ((int,), True),
        "extra": ((str,), True),
    },
}
