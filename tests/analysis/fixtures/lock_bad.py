"""Seeded REPRO-LOCK violations: registry mutations outside the lock."""

import threading


class Engine:
    def __init__(self):
        self._cache_lock = threading.Lock()
        self._submit_lock = threading.Lock()
        self._cache = {}
        self._hits = 0
        self._misses = 0
        self._uncacheable = 0
        self._job_counter = 0

    def lookup(self, key):
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1  # BAD: counter bump outside _cache_lock
            return cached
        with self._cache_lock:
            self._misses += 1
        self._cache[key] = object()  # BAD: cache write outside _cache_lock
        return self._cache[key]

    def next_job_id(self):
        self._job_counter += 1  # BAD: outside _submit_lock
        return f"job-{self._job_counter}"


class PoolManager:
    def __init__(self):
        self._lock = threading.RLock()
        self._sessions = {}
        self._busy = {}

    def evict(self, key):
        self._sessions.pop(key, None)  # BAD: mutating method call, no lock
