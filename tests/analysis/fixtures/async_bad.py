"""Seeded REPRO-ASYNC violations: blocking calls in coroutine bodies."""

import sqlite3
import time


async def handle_request(path):
    time.sleep(0.1)  # BAD: blocks the event loop
    conn = sqlite3.connect(path)  # BAD: synchronous sqlite on the loop
    with open(path) as handle:  # BAD: blocking file I/O
        return handle.read(), conn
