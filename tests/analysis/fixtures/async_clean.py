"""Clean twin of async_bad: awaits and executor offloading only."""

import asyncio
import sqlite3
import time


def _read_blocking(path):
    # Sync helper: runs on the executor, never on the loop.
    time.sleep(0.1)
    conn = sqlite3.connect(path)
    with open(path) as handle:
        return handle.read(), conn


async def handle_request(path):
    await asyncio.sleep(0.1)
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, _read_blocking, path)
