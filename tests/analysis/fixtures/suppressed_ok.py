"""A REPRO-LOCK violation waived by a suppression comment — analyzes clean."""

import threading


class PoolManager:
    def __init__(self):
        self._lock = threading.RLock()
        self._sessions = {}
        self._busy = {}

    def reset_before_sharing(self):
        # Sound: called from __init__-time setup before any thread sees us.
        self._sessions.clear()  # repro: allow[REPRO-LOCK] pre-publication setup
