"""Seeded REPRO-STATS violations: a counter dropped at three layers.

``new_counter`` exists on ``SolverResult`` but is missing from the
``SMTCheck`` snapshot, the ``SolverStats`` event, the session stats dict
and the emit site — each hop yields one finding.
"""

from dataclasses import dataclass


@dataclass
class SolverResult:
    satisfiable: bool = False
    conflicts: int = 0
    decisions: int = 0
    new_counter: int = 0


@dataclass
class SMTCheck:
    status: str = "unsat"
    conflicts: int = 0
    decisions: int = 0
    # BAD: new_counter missing


@dataclass
class SolverStats:
    conflicts: int = 0
    decisions: int = 0
    # BAD: new_counter missing


class SolveSession:
    def stats(self):
        return {
            "conflicts": 0,
            "decisions": 0,
            # BAD: "new_counter" key missing
        }


def emit_site(check, emit):
    emit(SolverStats(
        conflicts=check.conflicts,
        decisions=check.decisions,
        # BAD: new_counter keyword missing
    ))
