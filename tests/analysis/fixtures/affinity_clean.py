"""Clean twin of affinity_bad: goes through the engine's mediated API."""

from repro.api.engine import Engine


def proper_check(task):
    engine = Engine()
    try:
        return engine.run(task)
    finally:
        engine.close()
