"""Seeded REPRO-EVENT violations: dataclasses drifting from the table.

* ``ProbeEvent.extra`` is serialized but unknown to the schema;
* the schema declares ``ghost`` which no field produces;
* ``OrphanEvent`` has no ``EVENT_SCHEMAS`` entry at all.
"""

from dataclasses import dataclass
from typing import ClassVar


@dataclass
class Event:
    job_id: str = ""
    seq: int = -1

    TYPE: ClassVar[str] = "Event"


@dataclass
class ProbeEvent(Event):
    bound: int = 0
    extra: str = ""  # BAD: not in EVENT_SCHEMAS["ProbeEvent"]

    TYPE: ClassVar[str] = "ProbeEvent"


@dataclass
class OrphanEvent(Event):  # BAD: no EVENT_SCHEMAS entry
    reason: str = ""

    TYPE: ClassVar[str] = "OrphanEvent"


EVENT_SCHEMAS = {
    "ProbeEvent": {
        "bound": ((int,), True),
        "ghost": ((str,), False),  # BAD: no field produces this
    },
}
