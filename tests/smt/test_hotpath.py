"""Hot-path structure tests: decision heap, blocker watchers, minimization.

These pin the invariants the solver overhaul depends on:

* the indexed decision heap stays a max-heap (tie-broken toward smaller
  variable indices) under bump / decay / rescale / backtrack-reinsert, and
  its pick is identical to the historical linear activity scan;
* every stored clause keeps exactly two registered watchers (its first two
  literals), with valid blockers, through solve / erase_satisfied /
  absorb_learnt / add_clause / learnt reduction;
* recursive clause minimization never drops a required literal — every
  learnt clause is entailed by the original formula — and the shared
  ``_seen`` scratch is clean between conflicts.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.cnf import CNF
from repro.smt.solver import SATSolver


def build_cnf(num_vars, clauses):
    cnf = CNF()
    for _ in range(num_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


def brute_force_satisfiable(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any((bits[abs(l) - 1] if l > 0 else not bits[abs(l) - 1]) for l in clause)
            for clause in clauses
        ):
            return True
    return False


def random_clauses(rng, num_vars, num_clauses, max_len=3):
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, max_len)
        variables = rng.sample(range(1, num_vars + 1), min(size, num_vars))
        clauses.append([var if rng.random() < 0.5 else -var for var in variables])
    return clauses


# ----------------------------------------------------------------------
# Invariant checkers
# ----------------------------------------------------------------------
def assert_heap_valid(solver: SATSolver) -> None:
    """Max-heap order (activity, then smaller var), index map consistency,
    and presence of every unassigned variable.

    A solve call's exit defers heap reinsertion until the next call's
    refill, so the availability invariant is checked on the refilled heap.
    """
    if solver._heap_stale:
        solver._heap_refill()
    heap = solver._heap
    index = solver._heap_index
    activity = solver.activity
    assert len(set(heap)) == len(heap), "duplicate heap entries"
    for position, var in enumerate(heap):
        assert index[var] == position, f"index map stale for var {var}"
        if position > 0:
            parent = heap[(position - 1) >> 1]
            assert (activity[parent], -parent) >= (activity[var], -var), (
                f"heap order violated: parent {parent} < child {var}"
            )
    for var in range(1, solver.num_vars + 1):
        position = index[var]
        if position >= 0:
            assert heap[position] == var
        elif solver._lit_values[var] == 0:
            raise AssertionError(f"unassigned var {var} missing from heap")


def _slot_literal(slot: int) -> int:
    """The literal whose watcher list lives at ``slot`` (inverse slot map)."""
    return slot >> 1 if slot % 2 == 0 else -(slot >> 1)


def assert_watchers_valid(solver: SATSolver) -> None:
    """Every stored clause is watched exactly by its first two literals,
    with a blocker drawn from the clause; binary clauses live in the
    dedicated binary watcher arrays and longer clauses in the long arrays."""
    expected: dict[int, set[int]] = {
        index: {clause[0], clause[1]} for index, clause in enumerate(solver.clauses)
    }
    seen_watches: dict[int, list[int]] = {index: [] for index in expected}
    arrays = [(solver._watchers, False), (solver._binary_watchers, True)]
    for watcher_slots, is_binary_array in arrays:
        for slot, watcher_list in enumerate(watcher_slots):
            assert len(watcher_list) % 2 == 0, "odd watcher list length"
            propagated = _slot_literal(slot)
            for position in range(0, len(watcher_list), 2):
                clause_index = watcher_list[position]
                blocker = watcher_list[position + 1]
                assert 0 <= clause_index < len(solver.clauses), "dangling watcher"
                clause = solver.clauses[clause_index]
                assert (len(clause) == 2) == is_binary_array, (
                    f"clause {clause_index} is in the wrong watcher array"
                )
                watched = -propagated
                assert watched in expected[clause_index], (
                    f"clause {clause_index} watched on a non-watch literal {watched}"
                )
                assert blocker in clause, "blocker not a literal of its clause"
                assert blocker != watched, "blocker equals the watched literal"
                seen_watches[clause_index].append(watched)
    for index, watches in seen_watches.items():
        assert sorted(watches) == sorted(expected[index]), (
            f"clause {index} does not have exactly its two watches registered"
        )


def assert_seen_clean(solver: SATSolver) -> None:
    assert not solver._seen_to_clear, "to-clear list not drained"
    assert not any(solver._seen), "stale marks in the seen buffer"


# ----------------------------------------------------------------------
# Decision heap
# ----------------------------------------------------------------------
class TestDecisionHeap:
    def test_initial_heap_covers_all_variables(self):
        solver = SATSolver(build_cnf(9, [[1, 2]]))
        assert_heap_valid(solver)
        assert sorted(solver._heap) == list(range(1, 10))

    def test_pick_matches_linear_scan_under_distinct_activities(self):
        solver = SATSolver(build_cnf(8, [[1, 2]]))
        rng = random.Random(7)
        for var in range(1, 9):
            solver.activity[var] = rng.random()
        solver._heap_rebuild()
        assert_heap_valid(solver)
        picked = solver._pick_branch_variable()
        assert picked == solver._pick_branch_variable_linear()

    def test_pick_breaks_ties_toward_smaller_index_like_the_scan(self):
        solver = SATSolver(build_cnf(6, [[1, 2]]))
        for var in (2, 4, 5):
            solver.activity[var] = 1.0
        solver._heap_rebuild()
        assert solver._pick_branch_variable() == 2
        assert solver._pick_branch_variable_linear() == 2

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_heap_invariant_under_random_operations(self, data):
        num_vars = data.draw(st.integers(3, 12))
        solver = SATSolver(build_cnf(num_vars, [[1, 2], [-1, 3]]))
        operations = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["bump", "decay", "rescale", "solve", "grow"]),
                    st.integers(1, num_vars),
                ),
                max_size=24,
            )
        )
        for name, var in operations:
            if name == "bump":
                solver._bump_activity(var)
            elif name == "decay":
                solver._decay_activities()
            elif name == "rescale":
                # Force the overflow branch: the rescale must rebuild the
                # heap in place and keep the index map coherent.
                solver.activity[var] = 2e100
                solver._bump_activity(var)
            elif name == "solve":
                solver.solve(assumptions=[var if var % 2 else -var])
            elif name == "grow":
                solver.grow_variables(solver.num_vars + 1)
            assert_heap_valid(solver)
            picked = solver._pick_branch_variable()
            assert picked == solver._pick_branch_variable_linear()
            if picked is not None:
                solver._heap_insert(picked)  # _pick pops; restore for the next op

    def test_backtrack_reinserts_unassigned_variables(self):
        cnf = build_cnf(6, [[1, 2], [3, 4], [5, 6]])
        solver = SATSolver(cnf)
        assert solver.solve(assumptions=[1, 3]).satisfiable
        # The end-of-solve backtrack defers reinsertion; the refill (run by
        # the next solve call, here invoked via the invariant checker) must
        # make every variable available for decisions again.
        assert solver._heap_stale
        assert_heap_valid(solver)
        assert sorted(solver._heap) == list(range(1, 7))
        # And a second solve must behave as if the heap had never thinned.
        assert solver.solve(assumptions=[2, 4]).satisfiable


class TestDecisionPolicies:
    def test_default_policy_is_heap(self):
        solver = SATSolver(build_cnf(3, [[1, 2]]))
        assert solver.decision_policy == "heap"
        assert solver._use_heap

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            SATSolver(build_cnf(2, [[1]]), decision_policy="bogus")

    def test_environment_variable_selects_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_DECISION_POLICY", "linear")
        solver = SATSolver(build_cnf(3, [[1, 2]]))
        assert solver.decision_policy == "linear"
        assert not solver._use_heap

    def test_policies_make_identical_searches(self):
        rng = random.Random(23)
        for _ in range(20):
            num_vars = rng.randint(4, 10)
            clauses = random_clauses(rng, num_vars, rng.randint(3, 30))
            heap_solver = SATSolver(build_cnf(num_vars, clauses), decision_policy="heap")
            linear_solver = SATSolver(
                build_cnf(num_vars, clauses), decision_policy="linear"
            )
            heap_result = heap_solver.solve()
            linear_result = linear_solver.solve()
            assert heap_result.satisfiable == linear_result.satisfiable
            assert heap_result.model == linear_result.model
            assert heap_result.conflicts == linear_result.conflicts
            assert heap_result.decisions == linear_result.decisions
            assert heap_result.propagations == linear_result.propagations

    def test_incremental_equivalence_across_policies(self):
        rng = random.Random(5)
        num_vars = 8
        clauses = random_clauses(rng, num_vars, 16)
        heap_solver = SATSolver(build_cnf(num_vars, clauses), decision_policy="heap")
        linear_solver = SATSolver(build_cnf(num_vars, clauses), decision_policy="linear")
        for _ in range(6):
            assumptions = [
                var if rng.random() < 0.5 else -var
                for var in rng.sample(range(1, num_vars + 1), rng.randint(0, 3))
            ]
            first = heap_solver.solve(assumptions=assumptions)
            second = linear_solver.solve(assumptions=assumptions)
            assert first.satisfiable == second.satisfiable
            assert first.decisions == second.decisions
            assert first.conflicts == second.conflicts
            extra = random_clauses(rng, num_vars, 2)
            for clause in extra:
                heap_solver.add_clause(clause)
                linear_solver.add_clause(clause)


# ----------------------------------------------------------------------
# Watcher integrity
# ----------------------------------------------------------------------
class TestWatcherIntegrity:
    def test_watchers_after_construction(self):
        rng = random.Random(3)
        clauses = random_clauses(rng, 8, 25)
        solver = SATSolver(build_cnf(8, clauses))
        assert_watchers_valid(solver)

    def test_watchers_after_solve(self):
        rng = random.Random(11)
        for trial in range(15):
            num_vars = rng.randint(4, 10)
            clauses = random_clauses(rng, num_vars, rng.randint(5, 40))
            solver = SATSolver(build_cnf(num_vars, clauses))
            result = solver.solve()
            assert result.satisfiable == brute_force_satisfiable(num_vars, clauses)
            assert_watchers_valid(solver)

    def test_watchers_after_erase_satisfied(self):
        rng = random.Random(13)
        for trial in range(10):
            num_vars = rng.randint(4, 9)
            clauses = random_clauses(rng, num_vars, rng.randint(5, 30))
            solver = SATSolver(build_cnf(num_vars, clauses))
            solver.solve()
            unit = rng.randint(1, num_vars)
            solver.add_clause([unit])
            solver.erase_satisfied()
            assert_watchers_valid(solver)
            # The erased database still decides the strengthened formula.
            assert solver.solve().satisfiable == brute_force_satisfiable(
                num_vars, clauses + [[unit]]
            )

    def test_watchers_after_absorb_learnt(self):
        rng = random.Random(17)
        num_vars = 8
        clauses = random_clauses(rng, num_vars, 30)
        donor = SATSolver(build_cnf(num_vars, clauses))
        donor.solve()
        receiver = SATSolver(build_cnf(num_vars, clauses))
        for clause in donor.learnt_clauses():
            receiver.absorb_learnt(clause)
        assert_watchers_valid(receiver)
        assert receiver.solve().satisfiable == donor.solve().satisfiable

    def test_watchers_after_learnt_reduction(self):
        rng = random.Random(19)
        num_vars = 10
        clauses = random_clauses(rng, num_vars, 45)
        solver = SATSolver(build_cnf(num_vars, clauses), max_learnt=4)
        for _ in range(4):
            assumptions = [
                var if rng.random() < 0.5 else -var
                for var in rng.sample(range(1, num_vars + 1), 2)
            ]
            solver.solve(assumptions=assumptions)
        assert_watchers_valid(solver)

    def test_binary_clauses_in_dedicated_arrays_and_propagate(self):
        solver = SATSolver(build_cnf(3, [[1, 2], [-2, 3]]))
        assert_watchers_valid(solver)
        result = solver.solve(assumptions=[-1])
        assert result.satisfiable and result.model[2] and result.model[3]
        assert solver.blocker_hits >= 0  # counter exists and never goes negative


# ----------------------------------------------------------------------
# Conflict analysis: scratch hygiene and minimization soundness
# ----------------------------------------------------------------------
class TestAnalyzeScratch:
    def test_seen_buffer_clean_after_solves(self):
        rng = random.Random(29)
        for _ in range(10):
            num_vars = rng.randint(4, 10)
            clauses = random_clauses(rng, num_vars, rng.randint(10, 40))
            solver = SATSolver(build_cnf(num_vars, clauses))
            solver.solve()
            assert_seen_clean(solver)
            solver.solve(assumptions=[1])
            assert_seen_clean(solver)

    def test_statistics_deltas_include_hotpath_counters(self):
        rng = random.Random(31)
        clauses = random_clauses(rng, 9, 38)
        solver = SATSolver(build_cnf(9, clauses))
        result = solver.solve()
        assert result.blocker_hits == solver.blocker_hits
        assert result.heap_discards == solver.heap_discards
        again = solver.solve(assumptions=[2])
        assert again.blocker_hits == solver.blocker_hits - result.blocker_hits
        assert again.heap_discards == solver.heap_discards - result.heap_discards


class TestMinimizationSoundness:
    def assert_learnt_entailed(self, num_vars, clauses, solver):
        """Every learnt clause must be a consequence of the original formula:
        asserting its negation against a fresh solver over the original CNF
        must be unsatisfiable.  This is the regression net for the
        minimization bookkeeping (a dropped-but-required literal would leave
        a learnt clause that is NOT entailed)."""
        for learnt in solver.learnt_clauses():
            fresh = SATSolver(build_cnf(num_vars, clauses))
            negated = [-lit for lit in learnt]
            assert not fresh.solve(assumptions=negated).satisfiable, (
                f"learnt clause {learnt} is not entailed by the formula"
            )

    def test_learnt_clauses_entailed_on_random_instances(self):
        rng = random.Random(37)
        for _ in range(25):
            num_vars = rng.randint(4, 9)
            clauses = random_clauses(rng, num_vars, rng.randint(10, 40))
            solver = SATSolver(build_cnf(num_vars, clauses))
            result = solver.solve()
            assert result.satisfiable == brute_force_satisfiable(num_vars, clauses)
            self.assert_learnt_entailed(num_vars, clauses, solver)

    def test_learnt_clauses_entailed_under_assumptions(self):
        rng = random.Random(41)
        for _ in range(15):
            num_vars = rng.randint(5, 9)
            clauses = random_clauses(rng, num_vars, rng.randint(12, 36))
            solver = SATSolver(build_cnf(num_vars, clauses))
            for _ in range(3):
                assumptions = [
                    var if rng.random() < 0.5 else -var
                    for var in rng.sample(range(1, num_vars + 1), 2)
                ]
                solver.solve(assumptions=assumptions)
            self.assert_learnt_entailed(num_vars, clauses, solver)

    def test_crafted_chain_keeps_required_literal(self):
        """A hand-built implication ladder whose learnt clause admits real
        minimization: the solver must keep a literal whose reason chain
        grounds in a decision, and the final verdicts must match brute
        force whatever was dropped."""
        # x1..x4 decisions feed chains: x5 <- x1&x2, x6 <- x5&x3, and the
        # conflict clause requires (x6 & x4) -> x7 with x7 forced false.
        clauses = [
            [-1, -2, 5],
            [-5, -3, 6],
            [-6, -4, 7],
            [-7],
            # Force enough structure that the chain actually fires.
            [1], [2], [3],
        ]
        num_vars = 7
        solver = SATSolver(build_cnf(num_vars, clauses))
        result = solver.solve()
        expected = brute_force_satisfiable(num_vars, clauses)
        assert result.satisfiable == expected
        if result.satisfiable:
            assert result.model[4] is False  # x4 must be false: x6&x4 -> x7 -> bottom
        self.assert_learnt_entailed(num_vars, clauses, solver)
        assert_seen_clean(solver)

    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_randomized_verdicts_match_brute_force(self, data):
        num_vars = data.draw(st.integers(3, 7))
        num_clauses = data.draw(st.integers(3, 24))
        clauses = [
            data.draw(
                st.lists(
                    st.integers(1, num_vars).flatmap(
                        lambda v: st.sampled_from([v, -v])
                    ),
                    min_size=1,
                    max_size=3,
                )
            )
            for _ in range(num_clauses)
        ]
        solver = SATSolver(build_cnf(num_vars, clauses))
        result = solver.solve()
        assert result.satisfiable == brute_force_satisfiable(num_vars, clauses)
        assert_watchers_valid(solver)
        assert_seen_clean(solver)


# ----------------------------------------------------------------------
# Glucose-style binary self-subsumption
# ----------------------------------------------------------------------
class TestBinarySubsumption:
    def test_unit_drops_literal_resolved_by_binary_clause(self):
        """Learnt (1 ∨ ¬2 ∨ 3) resolved with the binary clause (1 ∨ 2)
        strengthens to (1 ∨ 3)."""
        solver = SATSolver(build_cnf(3, [[1, 2], [2, 3]]))
        assert solver._subsume_binary([1, -2, 3]) == [1, 3]
        assert solver.binary_subsumed == 1

    def test_unit_keeps_unresolvable_literals(self):
        solver = SATSolver(build_cnf(3, [[1, 2], [2, 3]]))
        assert solver._subsume_binary([1, 2, 3]) == [1, 2, 3]
        assert solver._subsume_binary([-1, -2, 3]) == [-1, -2, 3]
        assert solver.binary_subsumed == 0

    def test_lbd_gate_skips_wide_clauses(self):
        solver = SATSolver(build_cnf(8, [[1, 2], [2, 3]]))
        for var in range(1, 9):
            solver.level[var] = var  # 8 distinct levels > the LBD cap of 6
        learnt = [1, -2, -3, -4, -5, -6, -7, -8]
        assert solver._subsume_binary(list(learnt)) == learnt
        assert solver.binary_subsumed == 0

    def test_counter_deltas_flow_into_results(self):
        rng = random.Random(43)
        clauses = random_clauses(rng, 9, 40, max_len=2) + random_clauses(
            rng, 9, 12, max_len=3
        )
        solver = SATSolver(build_cnf(9, clauses))
        result = solver.solve()
        assert result.binary_subsumed == solver.binary_subsumed
        again = solver.solve(assumptions=[3])
        assert again.binary_subsumed == solver.binary_subsumed - result.binary_subsumed

    @staticmethod
    def pigeonhole(holes):
        """PHP(holes+1, holes): deep conflict analysis plus binary at-most-one
        clauses — the shape binary self-subsumption exists for."""
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1  # noqa: E731 - tiny local helper
        clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return pigeons * holes, clauses

    def test_pigeonhole_fires_subsumption_and_stays_entailed(self):
        soundness = TestMinimizationSoundness()
        fired = 0
        for holes in (4, 5):
            num_vars, clauses = self.pigeonhole(holes)
            solver = SATSolver(build_cnf(num_vars, clauses))
            result = solver.solve()
            assert not result.satisfiable  # one pigeon too many
            soundness.assert_learnt_entailed(num_vars, clauses, solver)
            assert_seen_clean(solver)
            assert_watchers_valid(solver)
            fired += solver.binary_subsumed
            assert result.binary_subsumed == solver.binary_subsumed
        assert fired > 0, "subsumption never fired on pigeonhole instances"

    def test_random_verdicts_unchanged_by_subsumption(self):
        """Random mixed CNFs still decide exactly as brute force does."""
        rng = random.Random(47)
        for _ in range(25):
            num_vars = rng.randint(5, 9)
            clauses = random_clauses(rng, num_vars, rng.randint(14, 30), max_len=2)
            clauses += random_clauses(rng, num_vars, rng.randint(4, 10), max_len=3)
            solver = SATSolver(build_cnf(num_vars, clauses))
            result = solver.solve()
            assert result.satisfiable == brute_force_satisfiable(num_vars, clauses)
            assert_seen_clean(solver)
            assert_watchers_valid(solver)
