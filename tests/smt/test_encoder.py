"""Formula-to-CNF encoder tests: semantics preserved under the SAT back end."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classical.expr import (
    And,
    BoolConst,
    BoolVar,
    Iff,
    Implies,
    IntConst,
    IntEq,
    IntLe,
    IntVar,
    Not,
    Or,
    UFBool,
    Xor,
    evaluate,
    sum_of,
)
from repro.smt.encoder import FormulaEncoder
from repro.smt.interface import check_formula, check_valid


class TestCardinality:
    def test_at_most_k(self):
        e = [BoolVar(f"e{i}") for i in range(6)]
        result = check_formula(
            And((IntLe(sum_of(e), IntConst(2)), Not(IntLe(sum_of(e), IntConst(1)))))
        )
        assert result.is_sat
        assert sum(result.model[f"e{i}"] for i in range(6)) == 2

    def test_unsatisfiable_bounds(self):
        e = [BoolVar(f"e{i}") for i in range(4)]
        result = check_formula(
            And((IntLe(sum_of(e), IntConst(1)), Not(IntLe(sum_of(e), IntConst(3)))))
        )
        assert result.is_unsat

    def test_sum_against_sum(self):
        e = [BoolVar(f"e{i}") for i in range(4)]
        c = [BoolVar(f"c{i}") for i in range(4)]
        formula = And(
            (IntLe(sum_of(c), sum_of(e)), IntLe(sum_of(e), IntConst(1)), c[0], c[1])
        )
        assert check_formula(formula).is_unsat

    def test_constant_on_left(self):
        e = [BoolVar(f"e{i}") for i in range(3)]
        assert check_formula(And((IntLe(IntConst(2), sum_of(e)), Not(e[0]), Not(e[1])))).is_unsat
        assert check_formula(And((IntLe(IntConst(2), sum_of(e)),))).is_sat

    def test_equality(self):
        e = [BoolVar(f"e{i}") for i in range(3)]
        result = check_formula(IntEq(sum_of(e), IntConst(3)))
        assert result.is_sat and all(result.model[f"e{i}"] for i in range(3))

    def test_free_integer_variable_rejected(self):
        with pytest.raises(TypeError):
            check_formula(IntLe(IntVar("n"), IntConst(2)))


class TestStructure:
    def test_uninterpreted_functions_are_congruent(self):
        a = UFBool("f", (BoolVar("s"),))
        b = UFBool("f", (BoolVar("s"),))
        assert check_formula(And((a, Not(b)))).is_unsat

    def test_distinct_uf_applications_independent(self):
        a = UFBool("f", (BoolVar("s"),))
        b = UFBool("f", (BoolVar("t"),))
        assert check_formula(And((a, Not(b)))).is_sat

    def test_validity_of_excluded_middle(self):
        x = BoolVar("x")
        assert check_valid(Or((x, Not(x)))).is_unsat

    def test_named_literals_exposed(self):
        encoder = FormulaEncoder()
        encoder.assert_formula(And((BoolVar("a"), BoolVar("b"))))
        assert set(encoder.named_literals()) == {"a", "b"}

    def test_assumptions_force_values(self):
        result = check_formula(Or((BoolVar("a"), BoolVar("b"))), assumptions={"a": False})
        assert result.is_sat and result.model["b"]


class TestSemanticEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_random_formulas_match_brute_force(self, data):
        variables = [BoolVar(f"x{i}") for i in range(4)]

        def build(depth):
            if depth == 0:
                return data.draw(
                    st.sampled_from(variables + [BoolConst(True), BoolConst(False)])
                )
            kind = data.draw(
                st.sampled_from(["and", "or", "not", "xor", "imp", "iff", "le", "eq"])
            )
            if kind == "not":
                return Not(build(depth - 1))
            if kind == "imp":
                return Implies(build(depth - 1), build(depth - 1))
            if kind == "iff":
                return Iff(build(depth - 1), build(depth - 1))
            if kind == "le":
                return IntLe(
                    sum_of([data.draw(st.sampled_from(variables)) for _ in range(2)]),
                    sum_of(
                        [data.draw(st.sampled_from(variables))]
                        + [IntConst(data.draw(st.integers(-1, 2)))]
                    ),
                )
            if kind == "eq":
                return IntEq(
                    sum_of([data.draw(st.sampled_from(variables)) for _ in range(2)]),
                    IntConst(data.draw(st.integers(0, 2))),
                )
            children = (build(depth - 1), build(depth - 1))
            return {"and": And, "or": Or, "xor": Xor}[kind](children)

        formula = build(3)
        expected = any(
            evaluate(formula, {f"x{i}": bit for i, bit in enumerate(bits)})
            for bits in itertools.product([False, True], repeat=4)
        )
        result = check_formula(formula)
        assert result.is_sat == expected
        if result.is_sat:
            memory = {f"x{i}": result.model.get(f"x{i}", False) for i in range(4)}
            assert evaluate(formula, memory)
