"""Parallel task-splitting driver tests."""

from repro.classical.expr import And, BoolVar, IntConst, IntLe, Not, Or, sum_of
from repro.smt.parallel import (
    IncrementalSplitSession,
    ParallelChecker,
    generate_split_assumptions,
)


class TestSplitting:
    def test_leaves_partition_the_space(self):
        variables = ["a", "b", "c"]
        leaves = generate_split_assumptions(variables, heuristic_weight=2, threshold=10)
        # The heuristic never fires, so the leaves are the 8 full assignments.
        assert len(leaves) == 8
        assert len({tuple(sorted(leaf.items())) for leaf in leaves}) == 8

    def test_heuristic_truncates_enumeration(self):
        variables = [f"e{i}" for i in range(6)]
        leaves = generate_split_assumptions(variables, heuristic_weight=6, threshold=6)
        assert 1 < len(leaves) < 64
        # Every full assignment extends exactly one leaf.
        for bits in range(64):
            assignment = {f"e{i}": bool((bits >> i) & 1) for i in range(6)}
            matches = [
                leaf
                for leaf in leaves
                if all(assignment[name] == value for name, value in leaf.items())
            ]
            assert len(matches) == 1

    def test_empty_variable_list(self):
        assert generate_split_assumptions([], 2, 5) == [{}]


class TestChecker:
    def test_sequential_unsat(self):
        e = [BoolVar(f"e{i}") for i in range(4)]
        formula = And((IntLe(sum_of(e), IntConst(1)), e[0], e[1]))
        checker = ParallelChecker(formula, split_variables=[f"e{i}" for i in range(4)], threshold=4)
        result = checker.run()
        assert result.is_unsat
        assert result.metadata["num_subtasks"] >= 1

    def test_sequential_sat_returns_model(self):
        e = [BoolVar(f"e{i}") for i in range(4)]
        formula = And((Or((e[0], e[1])), Not(e[2])))
        checker = ParallelChecker(formula, split_variables=["e0", "e1"], threshold=2)
        result = checker.run()
        assert result.is_sat
        assert result.model["e0"] or result.model["e1"]

    def test_parallel_two_workers(self):
        e = [BoolVar(f"e{i}") for i in range(5)]
        formula = And((IntLe(sum_of(e), IntConst(1)), e[0], e[1]))
        checker = ParallelChecker(
            formula,
            split_variables=[f"e{i}" for i in range(5)],
            threshold=3,
            num_workers=2,
        )
        assert checker.run().is_unsat


class TestStatisticsAggregation:
    def formula(self):
        e = [BoolVar(f"e{i}") for i in range(6)]
        return And((IntLe(sum_of(e), IntConst(2)), e[0], e[1], e[2]))

    def test_sequential_totals_cover_all_subtasks(self):
        result = ParallelChecker(
            self.formula(), split_variables=[f"e{i}" for i in range(6)], threshold=6
        ).run()
        assert result.is_unsat
        assert result.metadata["num_subtasks"] > 1
        # Every subtask's work is aggregated, not just the last one's.
        assert result.propagations > 0
        assert result.num_variables > 0 and result.num_clauses > 0
        session = result.metadata["session"]
        assert session["conflicts"] == result.conflicts
        assert session["propagations"] == result.propagations

    def test_pool_totals_cover_all_subtasks(self):
        result = ParallelChecker(
            self.formula(),
            split_variables=[f"e{i}" for i in range(6)],
            threshold=6,
            num_workers=2,
        ).run()
        assert result.is_unsat
        assert result.propagations > 0
        assert result.num_variables > 0 and result.num_clauses > 0
        assert result.metadata["num_workers"] == 2


class TestIncrementalSplitSession:
    def test_repeated_guarded_checks_one_encoding(self):
        e = [BoolVar(f"e{i}") for i in range(4)]
        # Base: at least two indicators set (via e0 & e1 pinned on).
        base = And((e[0], e[1]))
        weight = sum_of(e)
        with IncrementalSplitSession(base, split_variables=["e2", "e3"]) as session:
            tight = session.add_weight_guard("le1", weight, 1)
            assert session.check(select=(tight,)).is_unsat
            loose = session.add_weight_guard("le2", weight, 2)
            assert session.check(select=(loose,)).is_sat
            assert session.stats()["checks"] == 2

    def test_pool_guarded_checks_match_sequential(self):
        e = [BoolVar(f"e{i}") for i in range(5)]
        base = And((e[0], e[1]))
        weight = sum_of(e)
        sequential = IncrementalSplitSession(base, split_variables=["e2", "e3", "e4"])
        pooled = IncrementalSplitSession(
            base, split_variables=["e2", "e3", "e4"], num_workers=2
        )
        try:
            for bound in (1, 2, 3):
                name = f"le{bound}"
                sequential.add_weight_guard(name, weight, bound)
                pooled.add_weight_guard(name, weight, bound)
                assert (
                    sequential.check(select=(name,)).status
                    == pooled.check(select=(name,)).status
                )
        finally:
            sequential.close()
            pooled.close()
