"""CDCL SAT solver tests, including a brute-force cross-check."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.cnf import CNF
from repro.smt.solver import SATSolver


def brute_force_satisfiable(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any((bits[abs(l) - 1] if l > 0 else not bits[abs(l) - 1]) for l in clause)
            for clause in clauses
        ):
            return True
    return False


def build_cnf(num_vars, clauses):
    cnf = CNF()
    for _ in range(num_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


class TestBasics:
    def test_empty_cnf_is_sat(self):
        cnf = CNF()
        cnf.new_var()
        assert SATSolver(cnf).solve().satisfiable

    def test_unit_propagation(self):
        cnf = build_cnf(2, [[1], [-1, 2]])
        result = SATSolver(cnf).solve()
        assert result.satisfiable and result.model[1] and result.model[2]

    def test_empty_clause_is_unsat(self):
        cnf = CNF()
        cnf.new_var()
        cnf.clauses.append([])
        assert not SATSolver(cnf).solve().satisfiable

    def test_contradictory_units(self):
        cnf = build_cnf(1, [[1], [-1]])
        assert not SATSolver(cnf).solve().satisfiable

    def test_tautological_clause_dropped(self):
        cnf = build_cnf(1, [[1, -1]])
        assert cnf.num_clauses == 0

    def test_literal_out_of_range_rejected(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add_clause([2])

    def test_dimacs_output(self):
        cnf = build_cnf(2, [[1, -2]])
        text = cnf.to_dimacs()
        assert text.startswith("p cnf 2 1")
        assert "1 -2 0" in text


class TestAssumptions:
    def test_assumptions_restrict_models(self):
        cnf = build_cnf(2, [[1, 2]])
        solver = SATSolver(cnf)
        result = solver.solve(assumptions=[-1])
        assert result.satisfiable and result.model[2]

    def test_conflicting_assumptions(self):
        cnf = build_cnf(2, [[1, 2], [-1, 2]])
        assert not SATSolver(cnf).solve(assumptions=[-2]).satisfiable

    def test_assumption_contradicting_unit(self):
        cnf = build_cnf(1, [[1]])
        assert not SATSolver(cnf).solve(assumptions=[-1]).satisfiable


class TestStructuredInstances:
    def pigeonhole(self, pigeons, holes):
        cnf = CNF()
        var = {
            (p, h): cnf.new_var() for p in range(pigeons) for h in range(holes)
        }
        for p in range(pigeons):
            cnf.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
        return cnf

    def test_pigeonhole_unsat(self):
        assert not SATSolver(self.pigeonhole(5, 4)).solve().satisfiable

    def test_pigeonhole_sat_when_enough_holes(self):
        assert SATSolver(self.pigeonhole(4, 4)).solve().satisfiable

    def test_parity_chain_unsat(self):
        # x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsatisfiable.
        cnf = CNF()
        x = [cnf.new_var() for _ in range(3)]
        for a, b in [(0, 1), (1, 2), (0, 2)]:
            cnf.add_clause([x[a], x[b]])
            cnf.add_clause([-x[a], -x[b]])
        assert not SATSolver(cnf).solve().satisfiable


class TestRandomCrossCheck:
    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_against_brute_force(self, data):
        num_vars = data.draw(st.integers(2, 8))
        num_clauses = data.draw(st.integers(1, 30))
        clauses = [
            data.draw(
                st.lists(
                    st.integers(1, num_vars).flatmap(
                        lambda v: st.sampled_from([v, -v])
                    ),
                    min_size=1,
                    max_size=3,
                )
            )
            for _ in range(num_clauses)
        ]
        cnf = build_cnf(num_vars, clauses)
        result = SATSolver(cnf).solve()
        assert result.satisfiable == brute_force_satisfiable(num_vars, clauses)
        if result.satisfiable:
            for clause in clauses:
                assert any(
                    (result.model[abs(l)] if l > 0 else not result.model[abs(l)])
                    for l in clause
                )

    def test_random_3sat_near_threshold(self):
        rng = random.Random(11)
        for _ in range(10):
            num_vars = 12
            clauses = [
                [rng.choice([v, -v]) for v in rng.sample(range(1, num_vars + 1), 3)]
                for _ in range(int(4.2 * num_vars))
            ]
            cnf = build_cnf(num_vars, clauses)
            result = SATSolver(cnf).solve()
            assert result.satisfiable == brute_force_satisfiable(num_vars, clauses)
