"""Incremental-vs-fresh equivalence: a reused solver must decide like a new one.

The incremental session machinery (persistent solvers, learnt-clause
retention, selector-guarded bounds) is only sound if a session reused across
many queries returns exactly the verdicts a fresh solver would.  These tests
check that property over randomized CNFs, over clause addition between solve
calls, over the selector-guarded distance machinery, and over every registry
code — including the assumption-leak case (solve under assumptions, then
without: nothing assumed must stick).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classical.expr import IntConst
from repro.codes.registry import CODE_REGISTRY
from repro.smt.cnf import CNF
from repro.smt.interface import SolveSession, check_formula
from repro.smt.solver import SATSolver
from repro.verifier.encodings import (
    ErrorModel,
    precise_detection_base,
    precise_detection_formula,
)


def build_cnf(num_vars, clauses):
    cnf = CNF()
    for _ in range(num_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


def fresh_verdict(num_vars, clauses, assumptions):
    return SATSolver(build_cnf(num_vars, clauses)).solve(assumptions).satisfiable


clause_lists = st.integers(2, 8).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.lists(
                st.integers(1, n).flatmap(lambda v: st.sampled_from([v, -v])),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=25,
        ),
    )
)


class TestRandomizedEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(clause_lists, st.data())
    def test_reused_session_matches_fresh_under_assumption_sequences(self, instance, data):
        num_vars, clauses = instance
        solver = SATSolver(build_cnf(num_vars, clauses))
        assumption_sets = data.draw(
            st.lists(
                st.lists(
                    st.integers(1, num_vars).flatmap(lambda v: st.sampled_from([v, -v])),
                    min_size=0,
                    max_size=3,
                ),
                min_size=1,
                max_size=4,
            )
        )
        # The leak case: always end with an unassumed solve after the
        # assumed ones — nothing from earlier assumptions may persist.
        assumption_sets.append([])
        for assumptions in assumption_sets:
            reused = solver.solve(assumptions).satisfiable
            assert reused == fresh_verdict(num_vars, clauses, assumptions)

    @settings(max_examples=60, deadline=None)
    @given(clause_lists, clause_lists)
    def test_clause_addition_matches_fresh_solver(self, first, second):
        num_vars = max(first[0], second[0])
        solver = SATSolver(build_cnf(num_vars, first[1]))
        solver.solve()
        for clause in second[1]:
            solver.add_clause(clause)
        combined = first[1] + second[1]
        assert solver.solve().satisfiable == fresh_verdict(num_vars, combined, [])
        # And once more under an assumption, after the unassumed solve.
        assert solver.solve([1]).satisfiable == fresh_verdict(num_vars, combined, [1])


class TestIncrementalSolverBasics:
    def test_grow_variables_extends_range(self):
        cnf = build_cnf(2, [[1, 2]])
        solver = SATSolver(cnf)
        assert solver.solve().satisfiable
        solver.grow_variables(4)
        solver.add_clause([3, 4])
        solver.add_clause([-3])
        result = solver.solve()
        assert result.satisfiable and result.model[4]

    def test_permanent_conflict_is_latched(self):
        solver = SATSolver(build_cnf(2, [[1, 2]]))
        assert solver.solve().satisfiable
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert not solver.solve().satisfiable
        # The root-level contradiction must persist across further calls
        # (a consumed conflict cannot be rediscovered by propagation).
        assert not solver.solve().satisfiable
        assert not solver.solve([1]).satisfiable

    def test_statistics_are_per_call_deltas(self):
        solver = SATSolver(build_cnf(3, [[1, 2], [-1, 3], [-2, -3]]))
        first = solver.solve()
        second = solver.solve()
        assert first.satisfiable and second.satisfiable
        # The second call re-solves an already-satisfied formula; its
        # per-call counters must not include the first call's work.
        assert second.decisions <= first.decisions + solver.num_vars
        assert solver.conflicts == first.conflicts + second.conflicts
        assert solver.num_solves == 2

    def test_add_clause_rejected_mid_search(self):
        solver = SATSolver(build_cnf(2, [[1, 2]]))
        solver.trail_limits.append(0)  # simulate an open decision level
        with pytest.raises(RuntimeError):
            solver.add_clause([1])


class TestLearntClauseManagement:
    @settings(max_examples=60, deadline=None)
    @given(clause_lists, st.data())
    def test_reduction_preserves_verdicts(self, instance, data):
        """A solver forced to delete learnt clauses aggressively (budget 1)
        must still agree with an unmanaged fresh solver on every query."""
        num_vars, clauses = instance
        managed = SATSolver(build_cnf(num_vars, clauses), max_learnt=1)
        assumption_sets = data.draw(
            st.lists(
                st.lists(
                    st.integers(1, num_vars).flatmap(lambda v: st.sampled_from([v, -v])),
                    min_size=0,
                    max_size=3,
                ),
                min_size=1,
                max_size=4,
            )
        )
        assumption_sets.append([])
        for assumptions in assumption_sets:
            assert managed.solve(assumptions).satisfiable == fresh_verdict(
                num_vars, clauses, assumptions
            )

    def test_reduction_counters_and_locked_clauses(self):
        # A formula hard enough to learn on: pigeonhole-ish parity chains.
        from repro.codes import steane_code
        from repro.smt.encoder import FormulaEncoder
        from repro.verifier.encodings import accurate_correction_formula

        encoder = FormulaEncoder()
        encoder.assert_formula(accurate_correction_formula(steane_code(), max_errors=2))
        solver = SATSolver(encoder.cnf, max_learnt=5)
        solver.solve()
        assert solver.reductions > 0
        assert solver.learnt_deleted > 0
        assert solver.num_learnt == sum(solver.clause_is_learnt)
        # Deletion never touches problem clauses.
        assert sum(not learnt for learnt in solver.clause_is_learnt) == solver.num_problem_clauses

    def test_minimization_shrinks_learnt_clauses(self):
        from repro.codes import steane_code
        from repro.smt.encoder import FormulaEncoder
        from repro.verifier.encodings import accurate_correction_formula

        encoder = FormulaEncoder()
        encoder.assert_formula(accurate_correction_formula(steane_code(), max_errors=1))
        solver = SATSolver(encoder.cnf)
        solver.solve()
        assert solver.minimized_literals > 0

    def test_absorb_learnt_round_trip(self):
        cnf_clauses = [[1, 2], [-1, 3], [-2, 3], [-3, 4]]
        first = SATSolver(build_cnf(4, cnf_clauses))
        first.solve([-4])
        exported = first.learnt_clauses()
        second = SATSolver(build_cnf(4, cnf_clauses))
        for clause in exported:
            assert all(abs(lit) <= 4 for lit in clause)
            second.absorb_learnt(clause)
        # Absorbed clauses are consequences: verdicts are unchanged.
        for assumptions in ([], [-4], [1], [-3]):
            assert (
                second.solve(assumptions).satisfiable
                == fresh_verdict(4, cnf_clauses, assumptions)
            )

    def test_learnt_clauses_filters_by_max_var(self):
        solver = SATSolver(build_cnf(3, [[1, 2], [-1, 3], [-2, -3], [1, -3], [-1, -2, 3]]))
        solver.solve([3])
        solver.solve([-3])
        for clause in solver.learnt_clauses(max_var=2):
            assert all(abs(lit) <= 2 for lit in clause)


class TestCrossTaskGuardSharing:
    def test_correction_and_detection_share_one_session(self):
        """The resource-layer pattern at the smt level: both task formulas
        guarded on ONE session must agree with dedicated fresh checks, in
        both directions, with traffic interleaved (guard-leak check)."""
        from repro.api.engine import Engine
        from repro.api.tasks import CorrectionTask, DetectionTask

        engine = Engine()
        correction = engine.compile_task(CorrectionTask(code="steane")).formula
        detection = engine.compile_task(DetectionTask(code="steane", trial_distance=3)).formula
        session = SolveSession()
        correction_guard = session.add_guard("task:correction", correction)
        detection_guard = session.add_guard("task:detection", detection)
        for _ in range(2):  # interleave twice: learnt clauses flow both ways
            assert session.check(select=(correction_guard,)).status == check_formula(
                correction
            ).status
            assert session.check(select=(detection_guard,)).status == check_formula(
                detection
            ).status
        # An unguarded check on the same session is unconstrained by either
        # task formula (both selectors may go false): no guard leaks.
        assert session.check().is_sat

    def test_lower_weight_guards_match_monolithic_window(self):
        """`lo <= weight <= hi` through guards equals the conjunction checked
        monolithically, for every window over the steane detection base."""
        from repro.classical.expr import IntLe
        from repro.codes import steane_code

        code = steane_code()
        base, weight = precise_detection_base(code, ErrorModel("any"))
        session = SolveSession(base)
        for lo in range(1, 5):
            for hi in range(lo, 5):
                lower = session.add_weight_lower_guard(f"ge{lo}", weight, lo)
                upper = session.add_weight_guard(f"le{hi}", weight, hi)
                windowed = session.check(select=(lower, upper))
                from repro.classical.expr import And

                monolithic = check_formula(
                    And((base, IntLe(IntConst(lo), weight), IntLe(weight, IntConst(hi))))
                )
                assert windowed.status == monolithic.status, (lo, hi)


class TestSessionEquivalence:
    def test_session_assumption_leak(self):
        # steane correction formula: sat under a forced error of weight > 1,
        # unsat without assumptions; the session must recover.
        from repro.api.engine import Engine
        from repro.api.tasks import CorrectionTask

        compiled = Engine().compile_task(CorrectionTask(code="steane", error_model="Y"))
        session = SolveSession(compiled.formula)
        free = session.check()
        assert free.is_unsat
        pinned = session.check({"e_0": True, "e_1": True, "e_2": True})
        assert pinned.status == check_formula(
            compiled.formula, {"e_0": True, "e_1": True, "e_2": True}
        ).status
        again = session.check()
        assert again.is_unsat

    def test_selector_guards_match_monolithic_formulas(self):
        # The guarded base encoding must agree with the per-trial monolithic
        # formula for every trial distance — this is the distance machinery.
        from repro.codes import steane_code

        code = steane_code()
        base, weight = precise_detection_base(code, ErrorModel("any"))
        session = SolveSession(base)
        for trial in range(2, 6):
            name = session.add_weight_guard(f"t{trial}", weight, trial - 1)
            incremental = session.check(select=(name,))
            fresh = check_formula(
                precise_detection_formula(code, trial, ErrorModel("any"))
            )
            assert incremental.status == fresh.status, f"trial {trial}"
        # Selectors must not leak into extracted models.
        witness = session.check(select=("t5",))
        assert witness.is_sat
        assert not any(name in {f"t{t}" for t in range(2, 6)} for name in witness.model)

    @pytest.mark.parametrize("key", sorted(CODE_REGISTRY))
    def test_registry_code_session_matches_fresh(self, key):
        """For every registry code: a session reused across assumption sets
        (and after them, unassumed) returns the verdicts of fresh solvers."""
        from repro.api.engine import Engine, registry_sweep_tasks

        engine = Engine()
        compiled = engine.compile_task(registry_sweep_tasks([key])[0])
        indicator = compiled.split_variables[0]
        session = SolveSession(compiled.formula)
        assumption_sets = [{}, {indicator: True}, {indicator: False}, {}]
        for assumptions in assumption_sets:
            reused = session.check(assumptions)
            fresh = check_formula(compiled.formula, assumptions)
            assert reused.status == fresh.status, (key, assumptions)


class TestSolveControl:
    """Budget/deadline/cancel interruption: the solver stops within a slice
    and the instance stays reusable with verdicts identical to fresh runs."""

    def _steane_session(self):
        from repro.codes.registry import build_code

        code = build_code("steane")
        base, weight = precise_detection_base(code, ErrorModel("any"))
        return SolveSession(base), weight

    def test_pre_expired_deadline_interrupts_immediately(self):
        import time

        from repro.smt.solver import SolveControl, SolverInterrupted

        session, _ = self._steane_session()
        control = SolveControl(deadline=time.monotonic() - 1.0)
        with pytest.raises(SolverInterrupted) as excinfo:
            session.check(control=control)
        assert excinfo.value.reason == "deadline"

    def test_cancel_flag_interrupts_and_session_stays_equivalent(self):
        from repro.smt.solver import SolveControl, SolverInterrupted

        session, weight = self._steane_session()
        # A tiny check interval with a flag that flips after the first poll:
        # the solve is abandoned mid-search, then re-run to completion.
        polls = []

        def cancelled():
            polls.append(True)
            return len(polls) > 1

        control = SolveControl(cancelled=cancelled, check_interval=1)
        selector = session.add_weight_guard("w2", weight, 2)
        with pytest.raises(SolverInterrupted) as excinfo:
            session.check(select=(selector,), control=control)
        assert excinfo.value.reason == "cancelled"
        resumed = session.check(select=(selector,))
        fresh_session, fresh_weight = self._steane_session()
        fresh_selector = fresh_session.add_weight_guard("w2", fresh_weight, 2)
        fresh = fresh_session.check(select=(fresh_selector,))
        assert resumed.status == fresh.status

    def test_conflict_budget_interrupts(self):
        from repro.smt.solver import SolveControl, SolverInterrupted

        session, weight = self._steane_session()
        selector = session.add_weight_guard("w2", weight, 2)
        control = SolveControl(conflict_budget=1, check_interval=1)
        with pytest.raises(SolverInterrupted) as excinfo:
            session.check(select=(selector,), control=control)
        assert excinfo.value.reason == "budget"
        # The interrupted query still decides correctly afterwards.
        assert session.check(select=(selector,)).is_unsat

    @settings(deadline=None, max_examples=25)
    @given(clause_lists, st.data())
    def test_interrupt_then_resume_matches_fresh(self, instance, data):
        """Randomized: interrupting a solve at an arbitrary poll leaves the
        solver deciding exactly like a fresh one on the next call."""
        from repro.smt.solver import SATSolver, SolveControl, SolverInterrupted

        num_vars, clauses = instance
        cutoff = data.draw(st.integers(1, 5), label="cutoff")
        polls = []

        def cancelled():
            polls.append(True)
            return len(polls) >= cutoff

        solver = SATSolver(build_cnf(num_vars, clauses))
        try:
            first = solver.solve(control=SolveControl(cancelled=cancelled, check_interval=1))
            interrupted = False
        except SolverInterrupted:
            interrupted = True
        resumed = solver.solve()
        assert resumed.satisfiable == fresh_verdict(num_vars, clauses, ())
        if not interrupted:
            assert first.satisfiable == resumed.satisfiable


class TestGuardRetirement:
    """Root-negated selectors + satisfied-clause erasure (guard GC)."""

    def test_retired_guard_clauses_are_erased(self):
        from repro.codes.registry import build_code

        code = build_code("steane")
        base, weight = precise_detection_base(code, ErrorModel("any"))
        session = SolveSession()
        keep = session.add_guard("keep", base)
        session.check(select=(keep,))
        formula = precise_detection_formula(code, 3, error_model=ErrorModel("any"))
        stale = session.add_guard("stale", formula)
        session.check(select=(stale,))
        clauses_before = len(session._solver.clauses)
        erased = session.retire_guard(stale)
        assert erased >= 1
        assert len(session._solver.clauses) < clauses_before
        assert session.stats()["erased_clauses"] == erased

    def test_verdicts_unchanged_after_retirement(self):
        from repro.codes.registry import build_code

        code = build_code("five-qubit")
        base, weight = precise_detection_base(code, ErrorModel("any"))
        session = SolveSession(base)
        selectors = {}
        for bound in (1, 2, 3):
            selectors[bound] = session.add_weight_guard(f"w{bound}", weight, bound)
        before = {bound: session.check(select=(sel,)).status
                  for bound, sel in selectors.items()}
        session.retire_guard(selectors.pop(2))
        for bound, sel in selectors.items():
            assert session.check(select=(sel,)).status == before[bound], bound
        # A freshly added guard over the same weight still works (the unary
        # counter survives erasure because its defining clauses are not
        # guard-satisfied).
        new_selector = session.add_weight_guard("w2b", weight, 2)
        assert session.check(select=(new_selector,)).status == before[2]

    @settings(deadline=None, max_examples=25)
    @given(clause_lists, st.data())
    def test_erase_satisfied_preserves_verdicts(self, instance, data):
        """Randomized: root-asserting some literal and erasing satisfied
        clauses never changes any later verdict under assumptions."""
        num_vars, clauses = instance
        unit = data.draw(st.integers(1, num_vars), label="unit")
        sign = data.draw(st.sampled_from([1, -1]), label="sign")
        assumption = data.draw(
            st.integers(1, num_vars).flatmap(lambda v: st.sampled_from([v, -v])),
            label="assumption",
        )
        solver = SATSolver(build_cnf(num_vars, clauses))
        solver.solve()
        solver.add_clause([sign * unit])
        solver.erase_satisfied()
        got = solver.solve([assumption]).satisfiable
        want = fresh_verdict(num_vars, clauses + [[sign * unit]], [assumption])
        assert got == want
