"""VC reduction tests, cross-checked against the semantic (dense) entailment."""

import pytest

from repro.classical.expr import BoolConst, BoolVar, IntConst, IntLe, sum_of
from repro.classical.parity import ParityExpr
from repro.codes import steane_code
from repro.hoare.triple import HoareTriple
from repro.lang.ast import ConditionalPauli, Measure, Unitary, sequence
from repro.logic.assertion import conjunction, pauli_atom
from repro.pauli.pauli import PauliOperator
from repro.smt.interface import check_valid
from repro.vc.pipeline import spec_atoms_from_assertion, verify_triple
from repro.vc.reduction import ReductionError, SpecAtom, reduce_to_classical
from repro.vc.semantic import semantic_entailment
from repro.vc.symbolic import symbolic_wp
from repro.verifier.programs import correction_triple, min_weight_decoder_condition


def three_qubit_repetition_spec():
    z12 = PauliOperator.from_label("ZZI")
    z23 = PauliOperator.from_label("IZZ")
    z1 = PauliOperator.from_label("ZII")
    b = ParityExpr.of_variable("b")
    return [SpecAtom(z12), SpecAtom(z23), SpecAtom(z1, b)]


class TestCommutingCase:
    def test_repetition_code_correction_vc(self):
        """Example 4.2 turned into a classical VC: corrections cancel errors."""
        spec = three_qubit_repetition_spec()
        program = sequence(
            ConditionalPauli(BoolVar("e1"), 0, "X"),
            Measure("s1", PauliOperator.from_label("ZZI")),
            Measure("s2", PauliOperator.from_label("IZZ")),
            ConditionalPauli(BoolVar("c1"), 0, "X"),
        )
        post_atoms = [pauli_atom(a.operator, a.phase).expr for a in spec]
        precondition = symbolic_wp(program, post_atoms, 3)
        # Decoder: correct qubit 1 exactly when the first syndrome fires alone.
        decoder = BoolConst(True)
        formula = reduce_to_classical(
            spec,
            precondition,
            classical_constraint=IntLe(sum_of([BoolVar("e1")]), IntConst(1)),
            decoder_condition=decoder,
        )
        # Not valid without linking c1 to the syndromes.
        assert check_valid(formula).is_sat

    def test_phase_only_case_reduces_to_true(self):
        spec = three_qubit_repetition_spec()
        program = sequence()
        post_atoms = [pauli_atom(a.operator, a.phase).expr for a in spec]
        precondition = symbolic_wp(program, post_atoms, 3)
        formula = reduce_to_classical(spec, precondition, BoolConst(True))
        assert check_valid(formula).is_unsat

    def test_unrelated_body_rejected(self):
        spec = [SpecAtom(PauliOperator.from_label("ZZ"))]
        program = sequence()
        precondition = symbolic_wp(program, [pauli_atom(PauliOperator.from_label("XX")).expr], 2)
        with pytest.raises(ReductionError):
            reduce_to_classical(spec, precondition, BoolConst(True))


class TestAgainstSemanticOracle:
    def test_small_correction_agrees_with_dense_entailment(self):
        """Syntactic reduction and dense quantum-logic semantics agree on a 2-qubit example."""
        zz = PauliOperator.from_label("ZZ")
        xx = PauliOperator.from_label("XX")
        spec = [SpecAtom(zz), SpecAtom(xx)]
        program = sequence(
            ConditionalPauli(BoolVar("e"), 0, "X"),
            Measure("s", zz),
            ConditionalPauli(BoolVar("s"), 0, "X"),
        )
        post_atoms = [pauli_atom(zz).expr, pauli_atom(xx).expr]
        precondition = symbolic_wp(program, post_atoms, 2)
        formula = reduce_to_classical(spec, precondition, BoolConst(True))
        syntactic = check_valid(formula).is_unsat

        from repro.hoare.wp import weakest_precondition
        from repro.logic.assertion import conjunction as conj

        wp = weakest_precondition(program, conj([pauli_atom(zz), pauli_atom(xx)]))
        semantic = semantic_entailment(
            conj([pauli_atom(zz), pauli_atom(xx)]), wp, 2, ["e", "s"]
        )
        assert syntactic == semantic is True


class TestTripleLevel:
    def test_steane_correction_valid(self):
        scenario = correction_triple(steane_code(), error="X", max_errors=1)
        report = verify_triple(scenario.triple, decoder_condition=scenario.decoder_condition)
        assert report.verified

    def test_steane_overclaimed_bound_fails(self):
        scenario = correction_triple(steane_code(), error="Y", max_errors=2)
        report = verify_triple(scenario.triple, decoder_condition=scenario.decoder_condition)
        assert not report.verified
        assert report.counterexample is not None

    def test_wrong_postcondition_phase_fails(self):
        code = steane_code()
        scenario = correction_triple(code, error="X", max_errors=1)
        wrong_post = conjunction(
            [pauli_atom(g) for g in code.stabilizers]
            + [pauli_atom(code.logical_zs[0], ParityExpr.of_variable("b").flipped())]
        )
        triple = HoareTriple(
            scenario.triple.precondition,
            scenario.triple.program,
            wrong_post,
            classical_constraint=scenario.triple.classical_constraint,
            name="wrong-phase",
        )
        report = verify_triple(triple, decoder_condition=scenario.decoder_condition)
        assert not report.verified

    def test_spec_extraction_rejects_disjunctions(self):
        from repro.logic.assertion import OrAssertion

        atom = pauli_atom(PauliOperator.from_label("Z"))
        with pytest.raises(ValueError):
            spec_atoms_from_assertion(OrAssertion((atom, atom)))

    def test_decoder_condition_required_for_correction(self):
        scenario = correction_triple(steane_code(), error="X", max_errors=1)
        report = verify_triple(scenario.triple, decoder_condition=None)
        assert not report.verified
