"""Compact symbolic weakest-precondition (Eqn. 8) tests."""

import pytest

from repro.classical.expr import BoolVar
from repro.classical.parity import ParityExpr
from repro.codes import steane_code
from repro.lang.ast import Assign, AssignDecoder, ConditionalPauli, Measure, Unitary, While, sequence
from repro.pauli.expr import PauliExpr
from repro.pauli.pauli import PauliOperator
from repro.vc.symbolic import symbolic_wp
from repro.verifier.programs import correction_program


def test_unitary_and_error_transform_atoms():
    z1 = PauliExpr.from_label("ZI")
    program = sequence(ConditionalPauli(BoolVar("e"), 0, "Z"), Unitary("H", (0,)))
    result = symbolic_wp(program, [z1], 2)
    assert len(result.atoms) == 1
    term = result.atoms[0].expr.single_term()
    # Backwards: H turns Z into X, which then anti-commutes with the Z error.
    assert term.operator == PauliOperator.from_label("XI")
    assert term.phase == ParityExpr.of_variable("e")


def test_measurement_adds_bound_atom():
    program = Measure("s", PauliOperator.from_label("ZZ"))
    result = symbolic_wp(program, [PauliExpr.from_label("XX")], 2)
    assert result.bound_outcomes == ["s"]
    assert len(result.measurement_atoms()) == 1
    assert result.measurement_atoms()[0].expr.single_term().phase == ParityExpr.of_variable("s")


def test_decoder_substitution_introduces_uf_atoms():
    post = PauliExpr.atom(PauliOperator.from_label("Z"), ParityExpr.of_variable("z_1"))
    program = AssignDecoder(("z_1",), "f_z", ("s_1",))
    result = symbolic_wp(program, [post], 1)
    atoms = result.atoms[0].expr.phase_atoms()
    assert any(getattr(a, "name", "") == "f_z[1]" for a in atoms)


def test_classical_assignment_substitutes():
    post = PauliExpr.atom(PauliOperator.from_label("Z"), ParityExpr.of_variable("x"))
    result = symbolic_wp(Assign("x", BoolVar("y")), [post], 1)
    assert result.atoms[0].expr.free_variables() == frozenset({"y"})


def test_reassigned_measurement_variable_is_renamed():
    observable = PauliOperator.from_label("Z")
    program = sequence(
        Measure("s", observable),
        ConditionalPauli(BoolVar("s"), 0, "X"),
        Measure("s", observable),
    )
    post = PauliExpr.from_label("Z")
    result = symbolic_wp(program, [post], 1)
    assert len(result.bound_outcomes) == 2
    assert len(set(result.bound_outcomes)) == 2


def test_steane_correction_program_has_expected_shape():
    code = steane_code()
    program = correction_program(code, error="Y", logical_gate="H", propagation=True)
    post_atoms = [PauliExpr.atom(g) for g in code.stabilizers] + [
        PauliExpr.atom(code.logical_zs[0], ParityExpr.of_variable("b"))
    ]
    result = symbolic_wp(program, post_atoms, 7)
    # 7 postcondition atoms plus 6 measured generators.
    assert len(result.atoms) == 13
    assert len(result.bound_outcomes) == 6
    # Every postcondition atom picks up error variables in its phase.
    for atom in result.postcondition_atoms():
        names = atom.expr.free_variables()
        assert any(name.startswith("e_") or name.startswith("ep_") for name in names)


def test_unsupported_statement_raises():
    with pytest.raises(NotImplementedError):
        symbolic_wp(While(BoolVar("b"), Unitary("X", (0,))), [PauliExpr.from_label("Z")], 1)
