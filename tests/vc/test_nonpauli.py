"""Non-Pauli (T and H) error verification: the heuristic of Section 5.1 case 3."""

import pytest

from repro.classical.parity import ParityExpr
from repro.codes import steane_code
from repro.hoare.triple import HoareTriple
from repro.lang.ast import Unitary, sequence
from repro.logic.assertion import conjunction, pauli_atom
from repro.vc.pipeline import verify_triple
from repro.verifier.programs import (
    decoder_call_and_correction,
    min_weight_decoder_condition,
    syndrome_measurement,
    transversal_gate,
)


def fixed_error_scenario(error_gate: str, qubit: int, flip_postcondition: bool = False):
    """Logical H on the Steane code followed by one fixed non-Pauli error and EC."""
    code = steane_code()
    phase = ParityExpr.of_variable("b")
    program = sequence(
        transversal_gate(code, "H"),
        Unitary(error_gate, (qubit,)),
        syndrome_measurement(code),
        decoder_call_and_correction(code),
    )
    post_phase = phase.flipped() if flip_postcondition else phase
    precondition = conjunction(
        [pauli_atom(g) for g in code.stabilizers] + [pauli_atom(code.logical_xs[0], phase)]
    )
    postcondition = conjunction(
        [pauli_atom(g) for g in code.stabilizers] + [pauli_atom(code.logical_zs[0], post_phase)]
    )
    triple = HoareTriple(precondition, program, postcondition, name=f"steane-{error_gate}")
    decoder = min_weight_decoder_condition(code, max_corrections=1)
    return triple, decoder


@pytest.mark.parametrize("qubit", [0, 4, 6])
def test_single_t_error_is_corrected(qubit):
    triple, decoder = fixed_error_scenario("T", qubit)
    assert verify_triple(triple, decoder_condition=decoder).verified


@pytest.mark.parametrize("qubit", [0, 3, 6])
def test_single_h_error_is_corrected(qubit):
    triple, decoder = fixed_error_scenario("H", qubit)
    assert verify_triple(triple, decoder_condition=decoder).verified


def test_wrong_phase_with_t_error_fails():
    triple, decoder = fixed_error_scenario("T", 4, flip_postcondition=True)
    assert not verify_triple(triple, decoder_condition=decoder).verified


def test_wrong_phase_with_h_error_fails():
    triple, decoder = fixed_error_scenario("H", 6, flip_postcondition=True)
    assert not verify_triple(triple, decoder_condition=decoder).verified


def test_heuristic_reports_atom_count():
    triple, decoder = fixed_error_scenario("T", 4)
    report = verify_triple(triple, decoder_condition=decoder)
    assert report.verified
    # 7 postcondition atoms + 6 measurement atoms enter the reduction.
    assert report.details["num_atoms"] == 13
