"""Parity expression tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classical.expr import BoolConst, BoolVar, UFBool, Xor, evaluate
from repro.classical.parity import ParityExpr

names = st.sampled_from(["a", "b", "c", "d"])
parities = st.lists(names, max_size=4).map(
    lambda atoms: ParityExpr.of_atoms(atoms)
)


class TestBasics:
    def test_xor_is_symmetric_difference(self):
        p = ParityExpr.of_variable("a") ^ ParityExpr.of_variable("b")
        q = p ^ ParityExpr.of_variable("a")
        assert q == ParityExpr.of_variable("b")

    def test_self_inverse(self):
        p = ParityExpr.of_variable("a")
        assert (p ^ p).is_zero()

    def test_flipped(self):
        assert ParityExpr.zero().flipped() == ParityExpr.one()
        assert ParityExpr.one().flipped().is_zero()

    def test_of_atoms_cancels_duplicates(self):
        assert ParityExpr.of_atoms(["a", "a", "b"]) == ParityExpr.of_variable("b")

    def test_evaluate(self):
        p = ParityExpr.of_atoms(["a", "b"], constant=1)
        assert p.evaluate({"a": 1, "b": 0}) == 0
        assert p.evaluate({"a": 0, "b": 0}) == 1

    def test_substitute_with_parity(self):
        p = ParityExpr.of_atoms(["a", "b"])
        q = p.substitute({"a": ParityExpr.of_atoms(["b", "c"])})
        assert q == ParityExpr.of_variable("c")

    def test_substitute_with_constant(self):
        p = ParityExpr.of_atoms(["a", "b"])
        assert p.substitute({"a": 1}) == ParityExpr.of_atoms(["b"], constant=1)

    def test_variables_excludes_uf_atoms(self):
        uf = UFBool("f", (BoolVar("s"),))
        p = ParityExpr.of_atoms(["a", uf])
        assert p.variables() == frozenset({"a"})


class TestConversions:
    def test_from_bool_expr_xor(self):
        expr = Xor((BoolVar("a"), BoolVar("b"), BoolConst(True)))
        assert ParityExpr.from_bool_expr(expr) == ParityExpr.of_atoms(["a", "b"], constant=1)

    def test_to_bool_expr_roundtrip_semantics(self):
        p = ParityExpr.of_atoms(["a", "b"], constant=1)
        expr = p.to_bool_expr()
        for a in (0, 1):
            for b in (0, 1):
                memory = {"a": bool(a), "b": bool(b)}
                assert bool(evaluate(expr, memory)) == bool(p.evaluate(memory))

    def test_zero_converts_to_false(self):
        assert ParityExpr.zero().to_bool_expr() == BoolConst(False)


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(parities, parities)
    def test_xor_commutes(self, p, q):
        assert p ^ q == q ^ p

    @settings(max_examples=100, deadline=None)
    @given(parities, parities, parities)
    def test_xor_associates(self, p, q, r):
        assert (p ^ q) ^ r == p ^ (q ^ r)

    @settings(max_examples=100, deadline=None)
    @given(parities, st.dictionaries(names, st.integers(0, 1), min_size=4, max_size=4))
    def test_evaluation_is_group_homomorphism(self, p, memory):
        assert (p ^ p).evaluate(memory) == 0
        assert p.flipped().evaluate(memory) == 1 - p.evaluate(memory)
