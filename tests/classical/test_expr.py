"""Classical expression language tests."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classical.expr import (
    Add,
    And,
    BoolConst,
    BoolVar,
    Iff,
    Implies,
    IntConst,
    IntEq,
    IntLe,
    IntVar,
    Not,
    Or,
    UFBool,
    Xor,
    all_bool_vars,
    bool_and,
    bool_or,
    evaluate,
    free_variables,
    simplify,
    substitute,
    sum_of,
)


class TestEvaluation:
    def test_arithmetic(self):
        expr = Add((IntConst(2), IntVar("n")))
        assert evaluate(expr, {"n": 3}) == 5

    def test_boolean_connectives(self):
        memory = {"a": True, "b": False}
        assert evaluate(And((BoolVar("a"), Not(BoolVar("b")))), memory)
        assert not evaluate(And((BoolVar("a"), BoolVar("b"))), memory)
        assert evaluate(Or((BoolVar("b"), BoolVar("a"))), memory)
        assert evaluate(Implies(BoolVar("b"), BoolVar("a")), memory)
        assert not evaluate(Iff(BoolVar("a"), BoolVar("b")), memory)
        assert evaluate(Xor((BoolVar("a"), BoolVar("b"))), memory)

    def test_comparisons_with_coercion(self):
        memory = {"a": True, "b": True, "c": False}
        total = sum_of([BoolVar("a"), BoolVar("b"), BoolVar("c")])
        assert evaluate(IntLe(total, IntConst(2)), memory)
        assert evaluate(IntEq(total, IntConst(2)), memory)
        assert not evaluate(IntLe(total, IntConst(1)), memory)

    def test_uninterpreted_function_needs_interpretation(self):
        with pytest.raises(KeyError):
            evaluate(UFBool("f", (BoolVar("a"),)), {"a": True})


class TestSubstitution:
    def test_simultaneous(self):
        expr = Xor((BoolVar("x"), BoolVar("y")))
        result = substitute(expr, {"x": BoolVar("y"), "y": BoolVar("x")})
        assert result == Xor((BoolVar("y"), BoolVar("x")))

    def test_substitute_inside_uf(self):
        expr = UFBool("f", (BoolVar("s"),))
        assert substitute(expr, {"s": BoolConst(True)}) == UFBool("f", (BoolConst(True),))

    def test_free_variables(self):
        expr = Implies(IntLe(sum_of([BoolVar("e1"), BoolVar("e2")]), IntConst(1)), BoolVar("g"))
        assert free_variables(expr) == frozenset({"e1", "e2", "g"})

    def test_all_bool_vars_skips_int_vars(self):
        expr = IntLe(Add((IntVar("n"),)), sum_of([BoolVar("x")]))
        assert all_bool_vars(expr) == frozenset({"x"})


class TestSimplify:
    def test_constant_folding(self):
        assert simplify(And((BoolConst(True), BoolVar("x")))) == BoolVar("x")
        assert simplify(Or((BoolConst(True), BoolVar("x")))) == BoolConst(True)
        assert simplify(Not(Not(BoolVar("x")))) == BoolVar("x")
        assert simplify(IntLe(IntConst(1), IntConst(2))) == BoolConst(True)

    def test_xor_parity_folding(self):
        expr = Xor((BoolConst(True), BoolConst(True), BoolVar("x")))
        assert simplify(expr) == BoolVar("x")

    def test_bool_and_flattens(self):
        inner = And((BoolVar("a"), BoolVar("b")))
        assert bool_and([inner, BoolVar("c")]) == And((BoolVar("a"), BoolVar("b"), BoolVar("c")))

    def test_bool_or_short_circuit(self):
        assert bool_or([BoolConst(False)]) == BoolConst(False)
        assert bool_or([]) == BoolConst(False)
        assert bool_and([]) == BoolConst(True)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_simplify_preserves_semantics(self, data):
        variables = [BoolVar(f"v{i}") for i in range(3)]

        def build(depth):
            if depth == 0:
                return data.draw(st.sampled_from(variables + [BoolConst(True), BoolConst(False)]))
            kind = data.draw(st.sampled_from(["and", "or", "not", "xor", "imp"]))
            if kind == "not":
                return Not(build(depth - 1))
            if kind == "imp":
                return Implies(build(depth - 1), build(depth - 1))
            children = (build(depth - 1), build(depth - 1))
            return {"and": And, "or": Or, "xor": Xor}[kind](children)

        expr = build(3)
        simplified = simplify(expr)
        for bits in itertools.product([False, True], repeat=3):
            memory = {f"v{i}": bit for i, bit in enumerate(bits)}
            assert evaluate(expr, memory) == evaluate(simplified, memory)
