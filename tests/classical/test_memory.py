"""Classical memory tests."""

import pytest

from repro.classical.memory import ClassicalMemory


def test_update_is_persistent():
    memory = ClassicalMemory({"x": 1})
    updated = memory.update("x", 2)
    assert memory["x"] == 1
    assert updated["x"] == 2


def test_update_many():
    memory = ClassicalMemory().update_many({"a": True, "b": False})
    assert memory["a"] and not memory["b"]
    assert len(memory) == 2
    assert set(memory) == {"a", "b"}


def test_functions_channel():
    memory = ClassicalMemory({"s": 1}).with_functions({"f": lambda s: (s,)})
    assert memory.get("__functions__")["f"](True) == (True,)
    assert "f" in memory.functions


def test_missing_variable_raises():
    with pytest.raises(KeyError):
        ClassicalMemory()["missing"]


def test_equality_and_hash():
    first = ClassicalMemory({"a": 1})
    second = ClassicalMemory({"a": 1})
    assert first == second
    assert hash(first) == hash(second)
    assert first != ClassicalMemory({"a": 2})


def test_as_dict_copy():
    memory = ClassicalMemory({"a": 1})
    exported = memory.as_dict()
    exported["a"] = 5
    assert memory["a"] == 1
