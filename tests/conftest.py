"""Test configuration: make the in-tree package importable without installation."""

import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
