"""User-provided error constraints (Section 7.2)."""

import pytest

from repro.classical.expr import evaluate
from repro.codes import rotated_surface_code, steane_code
from repro.verifier import VeriQEC
from repro.verifier.constraints import discreteness_constraint, locality_constraint
from repro.verifier.encodings import ErrorModel


def test_locality_constraint_fixes_other_qubits():
    code = steane_code()
    constraint = locality_constraint(code, ErrorModel("Y"), allowed_qubits=[0, 1, 2])
    memory = {f"e_{q}": False for q in range(7)}
    assert evaluate(constraint, memory)
    memory["e_5"] = True
    assert not evaluate(constraint, memory)
    memory["e_5"] = False
    memory["e_1"] = True
    assert evaluate(constraint, memory)


def test_locality_random_selection_is_reproducible():
    code = rotated_surface_code(3)
    first = locality_constraint(code, ErrorModel("Y"), seed=7)
    second = locality_constraint(code, ErrorModel("Y"), seed=7)
    assert first == second


def test_discreteness_constraint_limits_each_segment():
    code = rotated_surface_code(3)
    constraint = discreteness_constraint(code, ErrorModel("Y"), num_segments=3)
    memory = {f"e_{q}": False for q in range(9)}
    memory["e_0"] = True
    memory["e_4"] = True
    assert evaluate(constraint, memory)
    memory["e_1"] = True  # two errors in the first segment of three qubits
    assert not evaluate(constraint, memory)


def test_constrained_verification_still_verifies():
    verifier = VeriQEC()
    code = rotated_surface_code(3)
    report = verifier.verify_with_constraints(
        code, locality=True, discreteness=True, error_model="Y", seed=3
    )
    assert report.verified
    assert set(report.details["constraints"]) == {"locality", "discreteness"}


def test_constraints_enlarge_verifiable_error_weight():
    """With locality restricting errors to a known-good subset, a weight bound
    beyond (d-1)/2 can still be verified — the point of partial verification."""
    verifier = VeriQEC()
    code = rotated_surface_code(3)
    unconstrained = verifier.verify_correction(code, max_errors=2, error_model="Z")
    assert not unconstrained.verified
    constrained = verifier.verify_with_constraints(
        code,
        locality=True,
        allowed_qubits=[0],
        max_errors=2,
        error_model="Z",
    )
    assert constrained.verified
