"""Veri-QEC front-end tests: the verification tasks of Section 7."""

import pytest

from repro.codes import build_code, rotated_surface_code, steane_code
from repro.verifier import VeriQEC
from repro.verifier.encodings import ErrorModel


@pytest.fixture(scope="module")
def verifier():
    return VeriQEC()


class TestAccurateCorrection:
    @pytest.mark.parametrize(
        "key", ["steane", "five-qubit", "six-qubit", "shor", "surface-3", "xzzx-3", "gottesman-8"]
    )
    def test_distance_three_codes_correct_one_error(self, verifier, key):
        report = verifier.verify_correction(build_code(key))
        assert report.verified
        assert report.details["max_errors"] == 1

    def test_overclaiming_two_errors_fails_with_counterexample(self, verifier):
        report = verifier.verify_correction(steane_code(), max_errors=2)
        assert not report.verified
        assert 1 <= len(report.counterexample_qubits()) <= 4

    def test_surface_d5_with_restricted_error_model(self, verifier):
        report = verifier.verify_correction(rotated_surface_code(5), error_model="Y")
        assert report.verified
        assert report.details["error_model"] == "Y"

    def test_repetition_code_corrects_x_but_not_z(self, verifier):
        code = build_code("repetition-5")
        assert verifier.verify_correction(code, max_errors=2, error_model="X").verified
        assert not verifier.verify_correction(code, max_errors=1, error_model="Z").verified

    def test_fixed_error_functionality(self, verifier):
        report = verifier.verify_fixed_error(steane_code(), {3: "Y"})
        assert report.verified
        assert report.task == "fixed-error"

    def test_report_summary_format(self, verifier):
        report = verifier.verify_correction(steane_code())
        assert "VERIFIED" in report.summary()
        assert "steane" in report.summary()


class TestPreciseDetection:
    @pytest.mark.parametrize("key, distance", [("steane", 3), ("surface-3", 3), ("five-qubit", 3)])
    def test_detection_at_true_distance(self, verifier, key, distance):
        assert verifier.verify_detection(build_code(key), trial_distance=distance).verified

    @pytest.mark.parametrize("key, distance", [("steane", 4), ("surface-3", 4)])
    def test_detection_beyond_distance_finds_logical_error(self, verifier, key, distance):
        report = verifier.verify_detection(build_code(key), trial_distance=distance)
        assert not report.verified
        assert len(report.counterexample_qubits()) == distance - 1

    @pytest.mark.parametrize("key", ["color-832", "detection-422", "iceberg-6"])
    def test_detection_codes_detect_single_errors(self, verifier, key):
        assert verifier.verify_detection(build_code(key), trial_distance=2).verified

    def test_find_distance(self, verifier):
        assert verifier.find_distance(steane_code(), max_trial=5) == 3
        assert verifier.find_distance(build_code("detection-422"), max_trial=4) == 2

    def test_trial_distance_validation(self, verifier):
        with pytest.raises(ValueError):
            verifier.verify_detection(steane_code(), trial_distance=1)


class TestParallel:
    def test_parallel_matches_sequential(self):
        sequential = VeriQEC(num_workers=1).verify_correction(steane_code(), error_model="Y")
        parallel = VeriQEC(num_workers=2).verify_correction(
            steane_code(), error_model="Y", parallel=True
        )
        assert sequential.verified and parallel.verified
        assert parallel.details.get("num_subtasks", 1) >= 1

    def test_parallel_finds_counterexample(self):
        report = VeriQEC(num_workers=2).verify_correction(
            steane_code(), max_errors=2, error_model="Y", parallel=True
        )
        assert not report.verified
