"""Program/correctness-formula generators and fault-tolerant scenarios."""

import pytest

from repro.codes import shor_code, steane_code
from repro.lang.ast import AssignDecoder, ConditionalPauli, Measure, Seq, Unitary
from repro.vc.pipeline import verify_triple
from repro.verifier.programs import (
    correction_program,
    correction_triple,
    ghz_preparation,
    logical_cnot_with_propagation,
    min_weight_decoder_condition,
)


def statement_types(program):
    assert isinstance(program, Seq)
    return [type(s).__name__ for s in program.statements]


class TestProgramGenerator:
    def test_correction_program_structure(self):
        code = steane_code()
        program = correction_program(code, error="Y", logical_gate="H", propagation=True)
        kinds = statement_types(program)
        assert kinds.count("ConditionalPauli") == 7 + 7 + 14  # errors + corrections
        assert kinds.count("Unitary") == 7
        assert kinds.count("Measure") == 6
        assert kinds.count("AssignDecoder") == 2

    def test_correction_program_without_options(self):
        program = correction_program(steane_code(), error="X")
        kinds = statement_types(program)
        assert "Unitary" not in kinds
        assert kinds.count("Measure") == 6

    def test_decoder_condition_mentions_all_syndromes(self):
        from repro.classical.expr import free_variables

        condition = min_weight_decoder_condition(steane_code())
        names = free_variables(condition)
        assert {f"s_{i}" for i in range(1, 7)} <= names


class TestScenarios:
    @pytest.mark.parametrize("error", ["X", "Z", "Y"])
    def test_steane_single_error_correction(self, error):
        scenario = correction_triple(steane_code(), error=error, max_errors=1)
        assert verify_triple(scenario.triple, scenario.decoder_condition).verified

    def test_steane_with_logical_h_and_propagation(self):
        scenario = correction_triple(
            steane_code(), error="Y", logical_gate="H", propagation=True, max_errors=1
        )
        assert verify_triple(scenario.triple, scenario.decoder_condition).verified
        assert "propagated" in scenario.description

    def test_shor_code_single_error_correction(self):
        scenario = correction_triple(shor_code(), error="X", max_errors=1)
        assert verify_triple(scenario.triple, scenario.decoder_condition).verified

    def test_ghz_preparation_scenario(self):
        scenario = ghz_preparation(steane_code(), blocks=3)
        assert verify_triple(scenario.triple).verified

    def test_ghz_two_blocks_is_bell_preparation(self):
        scenario = ghz_preparation(steane_code(), blocks=2)
        assert verify_triple(scenario.triple).verified

    def test_logical_cnot_with_propagated_errors(self):
        scenario = logical_cnot_with_propagation(steane_code(), error="X", max_errors=1)
        report = verify_triple(scenario.triple, scenario.decoder_condition)
        assert report.verified
        assert report.details["num_atoms"] == 12 + 2 + 12

    def test_logical_cnot_overclaimed_errors_fails(self):
        scenario = logical_cnot_with_propagation(steane_code(), error="X", max_errors=3)
        assert not verify_triple(scenario.triple, scenario.decoder_condition).verified
