"""Weakest-precondition rules checked against the paper's worked examples."""

import numpy as np
import pytest

from repro.classical.expr import BoolVar
from repro.classical.parity import ParityExpr
from repro.lang.ast import (
    Assign,
    ConditionalPauli,
    If,
    InitQubit,
    Measure,
    Skip,
    Unitary,
    While,
    sequence,
)
from repro.logic.assertion import (
    AndAssertion,
    OrAssertion,
    PauliAssertion,
    conjunction,
    pauli_atom,
)
from repro.hoare.wp import weakest_precondition
from repro.pauli.expr import PauliExpr
from repro.pauli.pauli import PauliOperator


def test_skip_rule():
    post = pauli_atom(PauliOperator.from_label("Z"))
    assert weakest_precondition(Skip(), post) is post


def test_unitary_rule_matches_backward_conjugation():
    post = pauli_atom(PauliOperator.from_label("X"))
    pre = weakest_precondition(Unitary("H", (0,)), post)
    assert isinstance(pre, PauliAssertion)
    assert pre.expr == PauliExpr.from_label("Z")


def test_example_4_2_repetition_code_derivation():
    """The three-qubit repetition-code derivation of Example 4.2."""
    z12 = PauliOperator.from_label("ZZI")
    z23 = PauliOperator.from_label("IZZ")
    z1 = PauliOperator.from_label("ZII")
    b = ParityExpr.of_variable("b")
    post = conjunction([pauli_atom(z12), pauli_atom(z23), pauli_atom(z1, b)])
    program = sequence(
        ConditionalPauli(BoolVar("x1"), 0, "X"),
        ConditionalPauli(BoolVar("x2"), 1, "X"),
        ConditionalPauli(BoolVar("x3"), 2, "X"),
    )
    pre = weakest_precondition(program, post)
    parts = pre.parts
    x1, x2, x3 = (ParityExpr.of_variable(v) for v in ("x1", "x2", "x3"))
    assert parts[0].expr == PauliExpr.atom(z12, x1 ^ x2)
    assert parts[1].expr == PauliExpr.atom(z23, x2 ^ x3)
    assert parts[2].expr == PauliExpr.atom(z1, b ^ x1)


def test_measurement_rule_shape():
    post = pauli_atom(PauliOperator.from_label("ZI"))
    pre = weakest_precondition(Measure("m", PauliOperator.from_label("IZ")), post)
    assert isinstance(pre, OrAssertion)
    assert len(pre.parts) == 2
    positive_branch, negative_branch = pre.parts
    assert isinstance(positive_branch, AndAssertion)
    assert isinstance(negative_branch, AndAssertion)


def test_example_3_3_backward_measurement_reasoning():
    """{X1} b := meas[Z2]; if b then X2 else skip end {X1 ∧ Z2} (Eqn. 6)."""
    post = conjunction(
        [pauli_atom(PauliOperator.from_label("XI")), pauli_atom(PauliOperator.from_label("IZ"))]
    )
    program = sequence(
        Measure("b", PauliOperator.from_label("IZ")),
        If(BoolVar("b"), Unitary("X", (1,)), Skip()),
    )
    pre = weakest_precondition(program, post)
    expected = pauli_atom(PauliOperator.from_label("XI")).to_projector({}, 2)
    for b_value in (False, True):
        assert np.allclose(pre.to_projector({"b": b_value}, 2), expected)


def test_assignment_rule_substitutes_phases():
    post = pauli_atom(PauliOperator.from_label("Z"), ParityExpr.of_variable("x"))
    pre = weakest_precondition(Assign("x", BoolVar("y")), post)
    assert pre.expr.free_variables() == frozenset({"y"})


def test_init_rule_shape():
    post = pauli_atom(PauliOperator.from_label("ZZ"))
    pre = weakest_precondition(InitQubit(0), post)
    assert isinstance(pre, OrAssertion)


def test_conditional_t_error_uses_if_rule():
    from repro.lang.ast import ConditionalGate

    post = pauli_atom(PauliOperator.from_label("X"))
    pre = weakest_precondition(ConditionalGate(BoolVar("e"), "T", (0,)), post)
    assert isinstance(pre, OrAssertion)


def test_while_requires_invariant():
    post = pauli_atom(PauliOperator.from_label("Z"))
    with pytest.raises(NotImplementedError):
        weakest_precondition(While(BoolVar("b"), Skip()), post)
