"""Empirical soundness of the proof system (Theorem 4.3).

For randomly generated loop-free programs and Pauli postconditions, any state
satisfying the computed weakest precondition must, after running the program
under the dense operational semantics, satisfy the postcondition in every
classical branch.  This is the executable counterpart of the Coq soundness
proof.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classical.expr import BoolVar
from repro.classical.memory import ClassicalMemory
from repro.hoare.wp import weakest_precondition
from repro.lang.ast import ConditionalPauli, Measure, Unitary, sequence
from repro.logic.assertion import conjunction, pauli_atom
from repro.pauli.pauli import PauliOperator
from repro.semantics.dense import DenseSimulator

NUM_QUBITS = 2

single_gates = st.sampled_from(["X", "Y", "Z", "H", "S", "T"])
paulis = st.sampled_from(["X", "Y", "Z"])


@st.composite
def random_program(draw):
    statements = []
    length = draw(st.integers(1, 5))
    for index in range(length):
        kind = draw(st.sampled_from(["unitary1", "unitary2", "error", "measure"]))
        if kind == "unitary1":
            statements.append(Unitary(draw(single_gates), (draw(st.integers(0, NUM_QUBITS - 1)),)))
        elif kind == "unitary2":
            statements.append(Unitary(draw(st.sampled_from(["CNOT", "CZ", "ISWAP"])), (0, 1)))
        elif kind == "error":
            statements.append(
                ConditionalPauli(
                    BoolVar(draw(st.sampled_from(["e0", "e1"]))),
                    draw(st.integers(0, NUM_QUBITS - 1)),
                    draw(paulis),
                )
            )
        else:
            observable = PauliOperator.from_sparse(
                NUM_QUBITS, {draw(st.integers(0, NUM_QUBITS - 1)): draw(paulis)}
            )
            statements.append(Measure(f"m{index}", observable))
    return sequence(*statements)


@st.composite
def random_postcondition(draw):
    atoms = []
    for label in draw(st.lists(st.sampled_from(["XX", "ZZ", "ZI", "IX", "YY", "XZ"]), min_size=1, max_size=2, unique=True)):
        atoms.append(pauli_atom(PauliOperator.from_label(label)))
    return conjunction(atoms)


def eigenbasis_states(projector):
    values, vectors = np.linalg.eigh(projector)
    return [vectors[:, i] for i in range(len(values)) if values[i] > 0.5]


@settings(max_examples=40, deadline=None)
@given(random_program(), random_postcondition(), st.booleans(), st.booleans())
def test_wp_is_sound(program, postcondition, e0, e1):
    memory = ClassicalMemory({"e0": e0, "e1": e1})
    precondition = weakest_precondition(program, postcondition)
    projector = precondition.to_projector(memory, NUM_QUBITS)
    simulator = DenseSimulator(NUM_QUBITS)
    for state_vector in eigenbasis_states(projector):
        final_states = simulator.run(program, simulator.state_from_vector(state_vector, memory))
        for final_memory, rho in final_states:
            if np.trace(rho).real < 1e-9:
                continue
            post_projector = postcondition.to_projector(final_memory, NUM_QUBITS)
            assert np.allclose(post_projector @ rho @ post_projector, rho, atol=1e-7)
