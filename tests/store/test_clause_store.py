"""The durable clause store: sqlite round-trips, eviction policy, checksum
hygiene, checkpoints and cross-process sharing.

The load-bearing property is *fail-safe degradation*: a corrupted row, a
torn checkpoint, even a wholesale-trashed database file can only ever cost
cache coverage (a colder start) — never a wrong clause reaching a solver.
Exact-fingerprint rows are checksum-bound to their key; everything weaker
than that (family projections) is re-proved by the consumer.
"""

import json
import os
import sqlite3
import threading

import pytest

from repro.store import (
    STORE_FILENAME,
    ClauseStore,
    has_store,
    load_clauses,
    merge_clauses,
)
from repro.store.clause_store import _row_checksum


def _db(store):
    return sqlite3.connect(store.path)


class TestRoundTrip:
    def test_store_and_load_canonicalises(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        store.store("fp", [[3, -1, 3], [2]])
        assert store.load("fp") == [[-1, 3], [2]]
        assert store.hits == 1 and store.misses == 0 and store.stored == 2

    def test_missing_fingerprint_misses(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        assert store.load("nope") is None
        assert store.misses == 1

    def test_merge_is_idempotent_and_keeps_best_lbd(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        store.store_meta("fp", [([1, 2], 7)])
        store.store_meta("fp", [([2, 1], 3)])
        store.store_meta("fp", [([1, 2], 9)])
        assert store.load("fp") == [[1, 2]]
        with _db(store) as conn:
            (lbd,) = conn.execute("SELECT lbd FROM clauses").fetchone()
        assert lbd == 3  # upserts keep the lowest LBD ever seen

    def test_malformed_clauses_are_rejected_on_write(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        store.store("fp", [[], [0], [1, "x"], [4, -2]])
        # Only the well-formed clause landed.
        assert store.load("fp") == [[-2, 4]]

    def test_persists_across_instances(self, tmp_path):
        ClauseStore(str(tmp_path)).store("fp", [[1, -2]])
        assert ClauseStore(str(tmp_path)).load("fp") == [[-2, 1]]


class TestEviction:
    def test_worst_lbd_evicted_first(self, tmp_path):
        store = ClauseStore(str(tmp_path), max_clauses=2)
        store.store_meta("fp", [([1, 2], 2), ([3, 4], 9), ([5, 6], 4)])
        assert store.evictions == 1
        survivors = store.load("fp")
        assert [1, 2] in survivors and [5, 6] in survivors
        assert [3, 4] not in survivors  # worst LBD went first

    def test_oldest_breaks_lbd_ties(self, tmp_path):
        store = ClauseStore(str(tmp_path), max_clauses=2)
        store.store_meta("old", [([1, 2], 5)])
        # Age the old entry, then overflow with equal-LBD newcomers.
        with _db(store) as conn:
            conn.execute("UPDATE clauses SET last_used = last_used - 60")
        store.store_meta("new", [([3, 4], 5), ([5, 6], 5)])
        assert store.evictions == 1
        remaining = {
            text
            for (text,) in _db(store).execute("SELECT clause FROM clauses").fetchall()
        }
        assert "[1,2]" not in remaining  # least recently used lost the tie
        assert remaining == {"[3,4]", "[5,6]"}

    def test_named_table_is_bounded_too(self, tmp_path):
        store = ClauseStore(str(tmp_path), max_named=1)
        store.store_meta(
            "fp",
            [],
            family="surface",
            named=[((("e0", True), ("e1", False)), 9), ((("e2", True), ("e3", False)), 2)],
        )
        assert store.evictions == 1
        assert store.family_candidates("surface") == [[("e2", True), ("e3", False)]]


class TestChecksums:
    def test_flipped_literal_is_dropped_and_deleted(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        store.store("fp", [[1, 2], [3, 4]])
        # Simulate bit-rot: mutate one row behind the store's back.
        with _db(store) as conn:
            conn.execute("UPDATE clauses SET clause = '[1,-2]' WHERE clause = '[1,2]'")
        assert store.load("fp") == [[3, 4]]
        assert store.corrupt_dropped == 1
        # The bad row is gone for good, not re-served.
        with _db(store) as conn:
            (count,) = conn.execute("SELECT COUNT(*) FROM clauses").fetchone()
        assert count == 1

    def test_checksum_binds_the_fingerprint(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        store.store("fp-a", [[1, 2]])
        # Re-key the row under a different fingerprint; the checksum no
        # longer matches, so the foreign session never absorbs it.
        with _db(store) as conn:
            conn.execute("UPDATE clauses SET fingerprint = 'fp-b'")
        assert store.load("fp-b") is None
        assert store.corrupt_dropped == 1

    def test_all_rows_bad_counts_a_miss(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        store.store("fp", [[1, 2]])
        with _db(store) as conn:
            conn.execute("UPDATE clauses SET checksum = 'ffff'")
        assert store.load("fp") is None
        assert store.misses == 1 and store.hits == 0


class TestCheckpoints:
    def test_round_trip_and_delete(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        payload = {"version": 1, "lo": 3, "hi": 7, "witness": {"e0": True}}
        store.checkpoint_save("walk", payload)
        assert store.checkpoint_load("walk") == payload
        store.checkpoint_delete("walk")
        assert store.checkpoint_load("walk") is None

    def test_upsert_replaces(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        store.checkpoint_save("walk", {"lo": 1})
        store.checkpoint_save("walk", {"lo": 5})
        assert store.checkpoint_load("walk") == {"lo": 5}

    def test_keys_are_isolated(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        store.checkpoint_save("walk-a", {"lo": 1})
        assert store.checkpoint_load("walk-b") is None
        assert store.checkpoint_load("walk-a") == {"lo": 1}

    def test_tampered_payload_is_dropped(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        store.checkpoint_save("walk", {"lo": 3})
        with _db(store) as conn:
            conn.execute("UPDATE checkpoints SET payload = '{\"lo\": 999}'")
        assert store.checkpoint_load("walk") is None
        assert store.corrupt_dropped == 1
        # And deleted — a later load is a plain miss, not a re-drop.
        assert store.checkpoint_load("walk") is None
        assert store.corrupt_dropped == 1

    def test_checksum_binds_the_key(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        store.checkpoint_save("walk-a", {"lo": 3})
        with _db(store) as conn:
            conn.execute("UPDATE checkpoints SET key = 'walk-b'")
        assert store.checkpoint_load("walk-b") is None


class TestFamilyIndex:
    def test_candidates_exclude_the_asking_fingerprint(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        named = [((("e0", True), ("e1", False)), 3)]
        store.store_meta("fp-sibling", [], family="surface", named=named)
        store.store_meta("fp-self", [], family="surface", named=[((("e2", True),), 4)])
        got = store.family_candidates("surface", exclude_fingerprint="fp-self")
        assert got == [[("e0", True), ("e1", False)]]

    def test_best_lbd_first(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        store.store_meta(
            "fp",
            [],
            family="surface",
            named=[((("e0", True),), 9), ((("e1", True),), 1), ((("e2", True),), 5)],
        )
        got = store.family_candidates("surface")
        assert got[0] == [("e1", True)]

    def test_families_are_isolated(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        store.store_meta("fp", [], family="surface", named=[((("e0", True),), 3)])
        assert store.family_candidates("hgp") == []
        assert store.family_candidates("") == []


class TestDegradation:
    def test_foreign_file_is_quarantined(self, tmp_path):
        path = tmp_path / STORE_FILENAME
        path.write_text("this is not a sqlite database, promise")
        store = ClauseStore(str(tmp_path))
        store.store("fp", [[1, 2]])
        assert store.load("fp") == [[1, 2]]
        assert (tmp_path / (STORE_FILENAME + ".corrupt")).exists()

    def test_rogue_directory_is_quarantined_too(self, tmp_path):
        (tmp_path / STORE_FILENAME).mkdir()
        store = ClauseStore(str(tmp_path))
        store.store("fp", [[1, 2]])
        assert store.load("fp") == [[1, 2]]
        assert (tmp_path / (STORE_FILENAME + ".corrupt")).is_dir()

    def test_broken_store_degrades_to_noop(self, tmp_path):
        # When even quarantine fails the store must behave like an empty
        # cache — no exception may ever reach a solve.
        store = ClauseStore(str(tmp_path))
        store._broken = True
        store.store("fp", [[1, 2]])
        assert store.load("fp") is None
        store.checkpoint_save("walk", {"lo": 1})
        assert store.checkpoint_load("walk") is None
        assert store.family_candidates("surface") == []
        assert store.clause_count() == 0

    def test_stats_shape(self, tmp_path):
        store = ClauseStore(str(tmp_path))
        stats = store.stats()
        assert set(stats) == {"hits", "misses", "stored", "evictions"}
        store.checkpoint_save("walk", {"lo": 1})
        store.checkpoint_load("walk")
        stats = store.stats()
        assert stats["checkpoint_hits"] == 1 and stats["checkpoints_saved"] == 1


class TestConcurrency:
    def test_parallel_merges_all_land(self, tmp_path):
        store = ClauseStore(str(tmp_path))

        def writer(offset):
            # Each thread needs its own connection — the store hands one
            # out per (pid, thread) automatically.
            for i in range(20):
                base = offset * 100 + i * 2 + 1
                store.store_meta("fp", [([base, base + 1], 3)])

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.clause_count() == 80
        assert len(store.load("fp")) == 80

    def test_two_instances_share_one_database(self, tmp_path):
        a = ClauseStore(str(tmp_path))
        b = ClauseStore(str(tmp_path))
        a.store("fp", [[1, 2]])
        assert b.load("fp") == [[1, 2]]
        b.store("fp", [[3, 4]])
        assert sorted(a.load("fp")) == [[1, 2], [3, 4]]


class TestWorkerHelpers:
    def test_has_store_probes_the_filename(self, tmp_path):
        assert not has_store(str(tmp_path))
        ClauseStore(str(tmp_path))
        assert has_store(str(tmp_path))

    def test_load_and_merge_round_trip(self, tmp_path):
        ClauseStore(str(tmp_path))
        merge_clauses(str(tmp_path), "fp", [[5, -1]])
        assert load_clauses(str(tmp_path), "fp") == [[-1, 5]]
        assert load_clauses(str(tmp_path), "other") is None


class TestChecksumHelper:
    def test_separator_prevents_concatenation_collisions(self):
        assert _row_checksum("ab", "c") != _row_checksum("a", "bc")
        assert _row_checksum("x", "y") == _row_checksum("x", "y")
