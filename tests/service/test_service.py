"""End-to-end service tests over real sockets.

The harness runs one :class:`VerificationService` on an ephemeral port in a
background thread (its own event loop); tests drive it with the blocking
:class:`ServiceClient` — the same stack the load benchmark and the CI smoke
job use.  Streams are asserted against the ``schema_version 1.0`` contract
via :func:`repro.api.events.validate_stream`, i.e. the wire format is held
to the already-pinned NDJSON schema.
"""

import socket
import threading
import time

import pytest

from repro.api.events import validate_stream
from repro.api.jobs import JobStatus
from repro.service import (
    AdmissionController,
    ServiceClient,
    ServiceError,
    VerificationService,
)


class ServiceHarness:
    """A live service on 127.0.0.1:<ephemeral>, stopped (drained) on exit."""

    def __init__(self, **service_kwargs):
        service_kwargs.setdefault("drain_grace", 5.0)
        self.service = VerificationService(port=0, **service_kwargs)
        self._ready = threading.Event()
        self._loop = None
        self.summary = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        import asyncio

        async def main():
            await self.service.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            self.summary = await self.service.serve_forever(
                install_signal_handlers=False
            )

        asyncio.run(main())

    def __enter__(self) -> "ServiceHarness":
        self._thread.start()
        assert self._ready.wait(10), "service failed to start"
        return self

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.service.request_stop)
            self._thread.join(60)
        assert not self._thread.is_alive(), "service failed to drain"

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def port(self) -> int:
        return self.service.port

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, **kwargs)


@pytest.fixture(scope="module")
def harness():
    with ServiceHarness() as running:
        yield running


class TestLifecycle:
    def test_submit_stream_result(self, harness):
        client = harness.client(api_key="lifecycle")
        job = client.submit({"kind": "correction", "code": "steane"})
        assert job["status"] == "pending"
        assert job["events"] == f"/jobs/{job['id']}/events"

        lines = list(client.events(job["id"], raw=True))
        num_events, counts, errors = validate_stream(lines)
        assert errors == []
        assert counts["JobSubmitted"] == 1
        assert counts["JobCompleted"] == 1

        final = client.job(job["id"])
        assert final["status"] == "succeeded"
        assert final["result"]["verified"] is True

    def test_lanes_map_to_priorities(self, harness):
        client = harness.client()
        job = client.submit({"kind": "correction", "code": "steane"}, lane="interactive")
        assert job["priority"] == 10
        job = client.submit({"kind": "correction", "code": "steane"}, lane="batch")
        assert job["priority"] == -10
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "correction", "code": "steane"}, lane="warp")
        assert excinfo.value.status == 400

    def test_deadline_expiry_cancels_and_session_stays_reusable(self, harness):
        client = harness.client(api_key="deadline")
        job = client.submit(
            {"kind": "distance", "code": "surface-5"}, deadline=0.01
        )
        for _ in range(200):
            final = client.job(job["id"])
            if final["status"] != "pending" and final["status"] != "running":
                break
            time.sleep(0.05)
        assert final["status"] == "cancelled"
        assert final["reason"] == "deadline"
        # The shared per-code session survived the expiry: the same code
        # verifies cleanly on a fresh job.
        job = client.submit({"kind": "detection", "code": "surface-5", "trial_distance": 3})
        events = list(client.events(job["id"]))
        assert events[-1]["event"] == "JobCompleted"

    def test_cancel_running_job_is_202_then_409(self, harness):
        client = harness.client(api_key="cancel")
        job = client.submit({"kind": "distance", "code": "surface-5"})
        accepted = client.cancel(job["id"])
        assert accepted["status"] == "cancelling"
        # await the terminal event, then a second DELETE is a stable 409
        events = list(client.events(job["id"]))
        assert events[-1]["event"] in ("JobCancelled", "JobCompleted")
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(job["id"])
        assert excinfo.value.status == 409

    def test_delete_terminal_job_is_409(self, harness):
        client = harness.client()
        job = client.submit({"kind": "correction", "code": "five-qubit"})
        list(client.events(job["id"]))  # run to completion
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(job["id"])
        assert excinfo.value.status == 409
        assert "terminal" in excinfo.value.payload["error"]

    def test_client_disconnect_mid_stream_leaves_job_and_session_intact(
        self, harness
    ):
        client = harness.client(api_key="rude")
        job = client.submit({"kind": "distance", "code": "surface-3"})
        # Hand-rolled request so we can hang up mid-stream.
        raw = socket.create_connection(("127.0.0.1", harness.port), timeout=10)
        raw.sendall(
            f"GET /jobs/{job['id']}/events HTTP/1.1\r\n"
            f"Host: localhost\r\n\r\n".encode()
        )
        assert raw.recv(64)  # at least the status line arrived
        raw.close()  # ... and the client vanishes
        # The job is unaffected: it still reaches its terminal state, the
        # stream is still fully replayable, and the engine keeps serving.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            final = client.job(job["id"])
            if final["status"] not in ("pending", "running"):
                break
            time.sleep(0.05)
        assert final["status"] == "succeeded"
        _, _, errors = validate_stream(client.events(job["id"], raw=True))
        assert errors == []
        follow_up = client.submit({"kind": "correction", "code": "steane"})
        assert list(client.events(follow_up["id"]))[-1]["event"] == "JobCompleted"


class TestValidation:
    def test_unknown_job_is_404(self, harness):
        client = harness.client()
        for call in (
            lambda: client.job("job-unknown"),
            lambda: client.cancel("job-unknown"),
            lambda: list(client.events("job-unknown")),
        ):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client().request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_bad_task_specs_are_400(self, harness):
        client = harness.client()
        for body in (
            {},  # no task at all
            {"task": {"kind": "nope"}},
            {"task": {"kind": "correction", "code": "steane", "bogus": 1}},
            {"task": {"kind": "correction"}},  # no code
            {"task": {"kind": "correction", "code": "steane"}, "deadline": -1},
            {"task": {"kind": "correction", "code": "steane"}, "priority": "high"},
        ):
            with pytest.raises(ServiceError) as excinfo:
                client.request("POST", "/jobs", body)
            assert excinfo.value.status == 400, body

    def test_malformed_json_is_400(self, harness):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", harness.port, timeout=10)
        try:
            conn.request("POST", "/jobs", body=b"{not json", headers={})
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_healthz_and_stats(self, harness):
        client = harness.client()
        assert client.healthz() == {"status": "ok"}
        stats = client.stats()
        assert set(stats) == {"server", "admission", "jobs", "engine", "resources"}
        assert stats["server"]["port"] == harness.port
        assert stats["server"]["draining"] is False
        assert stats["admission"]["admitted"] >= 1


class TestAdmissionOverHttp:
    def test_quota_exceeded_is_429_with_retry_after(self):
        admission = AdmissionController(max_pending=64, max_inflight_per_key=1)
        with ServiceHarness(admission=admission) as harness:
            client = harness.client(api_key="tenant-a")
            job = client.submit({"kind": "distance", "code": "surface-5"})
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"kind": "correction", "code": "steane"})
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1
            assert "quota" in excinfo.value.payload["error"]
            # another tenant is unaffected
            other = harness.client(api_key="tenant-b")
            ok = other.submit({"kind": "correction", "code": "steane"})
            assert ok["status"] == "pending"
            try:
                client.cancel(job["id"])
            except ServiceError:
                pass  # lost the race: the job already finished

    def test_rate_limited_is_429(self):
        admission = AdmissionController(rate=0.001, burst=1.0)
        with ServiceHarness(admission=admission) as harness:
            client = harness.client(api_key="chatty")
            client.submit({"kind": "correction", "code": "steane"})
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"kind": "correction", "code": "steane"})
            assert excinfo.value.status == 429
            assert "rate" in excinfo.value.payload["error"]

    def test_capacity_backpressure_is_429(self):
        admission = AdmissionController(max_pending=1)
        with ServiceHarness(admission=admission) as harness:
            slow = harness.client(api_key="a")
            job = slow.submit({"kind": "distance", "code": "surface-5"})
            with pytest.raises(ServiceError) as excinfo:
                harness.client(api_key="b").submit(
                    {"kind": "correction", "code": "steane"}
                )
            assert excinfo.value.status == 429
            assert "capacity" in excinfo.value.payload["error"]
            try:
                slow.cancel(job["id"])
            except ServiceError:
                pass  # lost the race: the job already finished


class TestConcurrentClients:
    def test_eight_clients_mixed_tasks_all_streams_validate(self, harness):
        specs = [
            ({"kind": "correction", "code": "steane"}, "interactive"),
            ({"kind": "correction", "code": "five-qubit"}, "normal"),
            ({"kind": "detection", "code": "steane"}, "normal"),
            ({"kind": "detection", "code": "five-qubit"}, "batch"),
            ({"kind": "distance", "code": "surface-3"}, "interactive"),
            ({"kind": "distance", "code": "steane", "max_trial": 5}, "batch"),
            ({"kind": "correction", "code": "steane", "max_errors": 1}, "normal"),
            ({"kind": "fixed-error", "code": "steane", "error_qubits": {"0": "X"}}, "normal"),
        ]
        outcomes: list = [None] * len(specs)

        def run_client(index: int, task: dict, lane: str) -> None:
            try:
                client = harness.client(api_key=f"client-{index}")
                job = client.submit(task, lane=lane)
                lines = list(client.events(job["id"], raw=True))
                final = client.job(job["id"])
                outcomes[index] = (lines, final)
            except BaseException as error:  # noqa: BLE001 - relayed to the test
                outcomes[index] = error

        threads = [
            threading.Thread(target=run_client, args=(i, task, lane))
            for i, (task, lane) in enumerate(specs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        for outcome in outcomes:
            assert not isinstance(outcome, BaseException), outcome
            assert outcome is not None, "a client never finished"

        all_lines = [line for lines, _ in outcomes for line in lines]
        num_events, counts, errors = validate_stream(all_lines)
        assert errors == []
        assert num_events >= 3 * len(specs)
        assert counts["JobSubmitted"] == len(specs)
        assert counts.get("JobCompleted", 0) == len(specs)
        for _, final in outcomes:
            assert final["status"] == "succeeded"


class TestDrain:
    def test_drain_cancels_inflight_with_shutdown_reason(self):
        with ServiceHarness(drain_grace=0.2) as harness:
            client = harness.client()
            quick = client.submit({"kind": "correction", "code": "steane"})
            list(client.events(quick["id"]))  # finished before the drain
            slow = client.submit({"kind": "distance", "code": "surface-5"})
            harness.stop()
        summary = harness.summary
        assert summary is not None
        assert summary["orphaned"] == 0
        job = harness.service.drain.get(slow["id"])
        assert job.status.terminal
        if job.status is JobStatus.CANCELLED:
            assert job.cancel_reason == "shutdown"
        done = harness.service.drain.get(quick["id"])
        assert done.status is JobStatus.SUCCEEDED

    def test_draining_rejects_new_jobs_with_503(self):
        with ServiceHarness() as harness:
            client = harness.client()
            # flip the drain flag from the server loop, keep the socket open
            harness._loop.call_soon_threadsafe(
                setattr, harness.service.drain, "_draining", True
            )
            time.sleep(0.1)
            health = None
            try:
                client.healthz()
            except ServiceError as error:
                health = error
            assert health is not None and health.status == 503
            assert health.payload["status"] == "draining"
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"kind": "correction", "code": "steane"})
            assert excinfo.value.status == 503
            # un-flip the flag so the context-exit drain runs normally
            # (begin_drain treats an already-set flag as "drain in progress")
            harness._loop.call_soon_threadsafe(
                setattr, harness.service.drain, "_draining", False
            )
            time.sleep(0.1)


class TestClauseStore:
    def test_stats_carry_per_lane_store_hit_rates(self, tmp_path):
        store_dir = str(tmp_path / "store")
        with ServiceHarness(clause_store=store_dir) as harness:
            client = harness.client()
            job = client.submit({"kind": "correction", "code": "steane"})
            list(client.events(job["id"]))
            stats = client.stats()["resources"]
            assert "store" in stats
            assert stats["store"]["misses"] >= 1  # first contact is cold
            lanes = {lane["lane"]: lane for lane in stats["lanes"]}
            steane_lane = next(
                lane for lane in lanes.values() if "steane" in lane.get("shard_keys", [])
            )
            assert steane_lane["store_misses"] >= 1
            assert steane_lane["store_hit_rate"] == 0.0
            harness.stop()

        # A restarted replica over the same directory warm-starts: the
        # drain flushed the learnt clauses into the shared sqlite file.
        with ServiceHarness(clause_store=store_dir) as harness:
            client = harness.client()
            job = client.submit({"kind": "correction", "code": "steane"})
            lines = list(client.events(job["id"], raw=True))
            _, counts, errors = validate_stream(lines)
            assert errors == [] and counts["JobCompleted"] == 1
            stats = client.stats()["resources"]
            assert stats["store"]["hits"] >= 1
            lanes = {lane["lane"]: lane for lane in stats["lanes"]}
            steane_lane = next(
                lane for lane in lanes.values() if "steane" in lane.get("shard_keys", [])
            )
            assert steane_lane["store_hits"] >= 1
            assert steane_lane["store_hit_rate"] > 0.0
