"""Concurrent mixed-code traffic through the real-socket service.

The sharded dispatcher's contract, asserted end to end: N clients hammering
distinct codes get exactly the verdicts a serial engine produces, every
``SolveSession`` is only ever touched by one thread (a reentrancy guard
wraps ``SolveSession.check`` for the duration of the test), and the new
wire surface — submit-and-stream, per-lane stats, per-key admission
counters, lane ids in access logs — behaves as documented.
"""

import json
import logging
import threading

import pytest

from repro.api import CorrectionTask, DetectionTask, Engine
from repro.api.events import validate_stream
from repro.smt.interface import SolveSession

from tests.service.test_service import ServiceHarness

#: distinct-code task specs for the concurrent sweep, plus the blocking
#: serial verdicts they must reproduce
MIXED_SPECS = [
    {"kind": "correction", "code": "steane"},
    {"kind": "correction", "code": "five-qubit"},
    {"kind": "correction", "code": "shor"},
    {"kind": "correction", "code": "surface-3"},
    {"kind": "correction", "code": "surface-5", "max_errors": 1},
    {"kind": "detection", "code": "color-832"},
    {"kind": "correction", "code": "gottesman-8"},
    {"kind": "detection", "code": "iceberg-6"},
]


def _serial_verdicts() -> dict[str, bool]:
    engine = Engine(backend="serial", lanes=1)
    verdicts = {}
    for spec in MIXED_SPECS:
        if spec["kind"] == "correction":
            task = CorrectionTask(
                code=spec["code"], max_errors=spec.get("max_errors")
            )
        else:
            task = DetectionTask(code=spec["code"])
        verdicts[spec["code"]] = engine.run(task).verified
    engine.close()
    return verdicts


class _ReentrancyGuard:
    """Monkeypatch wrapper asserting no SolveSession is entered twice at
    once, and recording which threads drove each session."""

    def __init__(self):
        self.lock = threading.Lock()
        self.active: set[int] = set()
        self.threads_by_session: dict[int, set[str]] = {}
        self.violations: list[str] = []

    def install(self, monkeypatch):
        original = SolveSession.check
        guard = self

        def checked(session, *args, **kwargs):
            key = id(session)
            with guard.lock:
                if key in guard.active:
                    guard.violations.append(
                        f"session {key:#x} entered concurrently"
                    )
                guard.active.add(key)
                guard.threads_by_session.setdefault(key, set()).add(
                    threading.current_thread().name
                )
            try:
                return original(session, *args, **kwargs)
            finally:
                with guard.lock:
                    guard.active.discard(key)

        monkeypatch.setattr(SolveSession, "check", checked)
        return self


class TestConcurrentMixedCodes:
    def test_verdicts_match_serial_and_sessions_stay_single_threaded(
        self, monkeypatch
    ):
        expected = _serial_verdicts()
        guard = _ReentrancyGuard().install(monkeypatch)
        outcomes: list = [None] * len(MIXED_SPECS)
        with ServiceHarness(lanes=4) as harness:
            # Deterministic warm start: solve surface-3 to completion first so
            # its learnt clauses exist when the concurrent sweep reaches
            # surface-5 (arrival order within the shared lane is otherwise
            # racy, and an empty sibling absorbs nothing).
            warm = harness.client(api_key="warmup")
            _, warm_events = warm.submit_stream(
                {"kind": "correction", "code": "surface-3"}
            )
            assert list(warm_events)[-1]["event"] == "JobCompleted"

            def run_client(index: int, spec: dict) -> None:
                try:
                    client = harness.client(api_key=f"mixed-{index}")
                    job_id, events = client.submit_stream(spec, raw=True)
                    outcomes[index] = (job_id, list(events))
                except BaseException as error:  # noqa: BLE001 - relayed
                    outcomes[index] = error

            threads = [
                threading.Thread(target=run_client, args=(i, spec))
                for i, spec in enumerate(MIXED_SPECS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)

            for outcome in outcomes:
                assert not isinstance(outcome, BaseException), outcome
                assert outcome is not None, "a client never finished"

            # Verdicts: byte-identical to the serial baseline.
            for spec, (job_id, lines) in zip(MIXED_SPECS, outcomes):
                final = harness.client().job(job_id)
                assert final["status"] == "succeeded", (spec, final)
                assert final["result"]["verified"] == expected[spec["code"]], spec

            # Streams: valid against the pinned schema, one submit +
            # one terminal event per job.
            all_lines = [line for _, lines in outcomes for line in lines]
            _, counts, errors = validate_stream(all_lines)
            assert errors == []
            assert counts["JobSubmitted"] == len(MIXED_SPECS)
            assert counts["JobCompleted"] == len(MIXED_SPECS)

            # The lane table saw real concurrency: jobs completed on more
            # than one lane (8 distinct shard keys over 4 lanes cannot
            # collapse onto one).
            stats = harness.client().stats()
            lanes = stats["resources"]["lanes"]
            busy = [entry for entry in lanes if entry["jobs_completed"]]
            assert len(busy) > 1
            assert sum(entry["jobs_completed"] for entry in lanes) >= len(MIXED_SPECS)

            # Family warm start fired for surface-5 (its sibling surface-3
            # is in the sweep and shares its lane).
            assert stats["resources"].get("family_absorbed", 0) > 0

            # Per-key admission counters survive the drained load.
            admission = stats["admission"]
            for index in range(len(MIXED_SPECS)):
                assert admission["admitted_by_key"][f"mixed-{index}"] == 1
                assert admission["completed_by_key"][f"mixed-{index}"] == 1
            assert admission["inflight_by_key"] == {}

        # The invariant the whole design hangs on.
        assert guard.violations == []
        multi = {
            key: names
            for key, names in guard.threads_by_session.items()
            if len(names) > 1
        }
        assert multi == {}, f"sessions touched by multiple threads: {multi}"
        # ... and the solving threads really were named lane threads.
        lane_threads = {
            name
            for names in guard.threads_by_session.values()
            for name in names
        }
        assert lane_threads
        assert all(name.startswith("repro-lane-") for name in lane_threads)


class TestSubmitStream:
    def test_one_connection_submit_and_verdict(self):
        with ServiceHarness(lanes=2) as harness:
            client = harness.client(api_key="stream")
            job_id, events = client.submit_stream(
                {"kind": "correction", "code": "steane"}
            )
            lines = list(events)
            assert job_id.startswith("job-")
            assert lines[0]["event"] == "JobSubmitted"
            assert lines[-1]["event"] == "JobCompleted"
            assert lines[-1]["verified"] is True
            # the job is also addressable afterwards, as usual
            assert harness.client().job(job_id)["status"] == "succeeded"

    def test_finished_job_replay_uses_the_snapshot_path(self):
        with ServiceHarness(lanes=2) as harness:
            client = harness.client()
            job = client.submit({"kind": "correction", "code": "five-qubit"})
            first = list(client.events(job["id"], raw=True))
            # Replay of a terminal job: identical bytes, still schema-valid.
            second = list(client.events(job["id"], raw=True))
            assert second == first
            _, _, errors = validate_stream(second)
            assert errors == []

    def test_keep_alive_reuses_one_socket_across_jobs(self):
        with ServiceHarness(lanes=2) as harness:
            client = harness.client(api_key="pump", keep_alive=True)
            connects = 0
            original = client._connect

            def counting_connect():
                nonlocal connects
                connects += 1
                return original()

            client._connect = counting_connect
            try:
                for code in ("steane", "five-qubit", "steane"):
                    _, events = client.submit_stream(
                        {"kind": "correction", "code": code}
                    )
                    lines = list(events)
                    assert lines[-1]["event"] == "JobCompleted"
            finally:
                client.close()
            assert connects == 1

    def test_keep_alive_recovers_from_a_stale_socket(self):
        with ServiceHarness(lanes=2) as harness:
            client = harness.client(keep_alive=True)
            _, events = client.submit_stream({"kind": "correction", "code": "steane"})
            assert list(events)[-1]["event"] == "JobCompleted"
            # Sabotage the pooled socket as a closed-by-server stand-in: the
            # next submit must transparently retry on a fresh connection.
            assert client._conn is not None
            client._conn.sock.close()
            _, events = client.submit_stream({"kind": "correction", "code": "steane"})
            assert list(events)[-1]["event"] == "JobCompleted"
            client.close()

    def test_bad_stream_flag_is_400(self):
        with ServiceHarness(lanes=2) as harness:
            from repro.service import ServiceError

            with pytest.raises(ServiceError) as excinfo:
                harness.client().request(
                    "POST",
                    "/jobs",
                    {"task": {"kind": "correction", "code": "steane"}, "stream": 1},
                )
            assert excinfo.value.status == 400


class TestLaneObservability:
    def test_access_log_records_carry_the_job_lane(self):
        records: list[dict] = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(json.loads(record.getMessage()))

        access = logging.getLogger("repro.service.access")
        handler = Capture()
        access.addHandler(handler)
        access.setLevel(logging.INFO)
        try:
            with ServiceHarness(lanes=4) as harness:
                client = harness.client(api_key="observer")
                job = client.submit({"kind": "correction", "code": "steane"})
                list(client.events(job["id"]))
        finally:
            access.removeHandler(handler)
        submits = [r for r in records if r.get("method") == "POST" and r["status"] == 201]
        assert submits
        assert submits[0]["job_id"] == job["id"]
        assert isinstance(submits[0]["job_lane"], int)
        streams = [r for r in records if r.get("path", "").endswith("/events")]
        assert streams and streams[0]["job_lane"] == submits[0]["job_lane"]

    def test_solver_stats_events_carry_the_lane_over_the_wire(self):
        with ServiceHarness(lanes=4) as harness:
            client = harness.client()
            _, events = client.submit_stream({"kind": "correction", "code": "shor"})
            solver = [e for e in events if e["event"] == "SolverStats"]
            assert solver
            assert all(isinstance(e["lane"], int) and e["lane"] >= 0 for e in solver)
