"""Unit tests for the admission policy: buckets, quotas, backpressure."""

import pytest

from repro.service.admission import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_burst_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)

    def test_refills_at_rate_up_to_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            bucket.try_acquire()
        clock.advance(0.5)  # +1 token
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.advance(100.0)  # refill clamps at burst
        assert bucket.tokens == pytest.approx(4.0)

    def test_wait_hint_is_time_to_token(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == pytest.approx(0.25)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


class TestAdmissionController:
    def test_admits_and_releases_capacity(self):
        control = AdmissionController(max_pending=2, clock=FakeClock())
        assert control.admit("a").allowed
        assert control.admit("b").allowed
        decision = control.admit("c")
        assert not decision.allowed
        assert decision.cause == "capacity"
        assert decision.retry_after > 0
        control.release("a")
        assert control.admit("c").allowed
        assert control.pending() == 2

    def test_per_key_quota(self):
        control = AdmissionController(
            max_pending=100, max_inflight_per_key=2, clock=FakeClock()
        )
        assert control.admit("team").allowed
        assert control.admit("team").allowed
        decision = control.admit("team")
        assert (decision.allowed, decision.cause) == (False, "quota")
        # other tenants are unaffected
        assert control.admit("other").allowed
        control.release("team")
        assert control.admit("team").allowed

    def test_rate_limit_per_key(self):
        clock = FakeClock()
        control = AdmissionController(
            max_pending=100,
            max_inflight_per_key=100,
            rate=1.0,
            burst=2.0,
            clock=clock,
        )
        assert control.admit("fast").allowed
        assert control.admit("fast").allowed
        decision = control.admit("fast")
        assert (decision.allowed, decision.cause) == (False, "rate")
        assert decision.retry_after == pytest.approx(1.0)
        clock.advance(1.0)
        assert control.admit("fast").allowed

    def test_stats_counts_rejections_by_cause(self):
        clock = FakeClock()
        control = AdmissionController(
            max_pending=1, max_inflight_per_key=1, rate=1.0, burst=1.0, clock=clock
        )
        control.admit("a")
        control.admit("a")  # capacity (pending cap hits before the quota)
        stats = control.stats()
        assert stats["admitted"] == 1
        assert stats["rejected"]["capacity"] == 1
        assert stats["pending"] == 1
        assert stats["inflight_by_key"] == {"a": 1}

    def test_release_is_clamped(self):
        control = AdmissionController(clock=FakeClock())
        control.release("never-admitted")
        assert control.pending() == 0

    def test_cumulative_per_key_counters_survive_the_load(self):
        """Regression: after every job finishes, ``inflight_by_key`` drains
        back to empty — the cumulative ``admitted_by_key`` /
        ``completed_by_key`` counters are what keep post-run stats
        inspectable."""
        control = AdmissionController(
            max_pending=10, max_inflight_per_key=10, rate=100.0, burst=100.0,
            clock=FakeClock(),
        )
        for _ in range(3):
            assert control.admit("a").allowed
        assert control.admit("b").allowed
        for _ in range(3):
            control.release("a")
        control.release("b")
        stats = control.stats()
        assert stats["inflight_by_key"] == {}  # the old, drained snapshot
        assert stats["admitted_by_key"] == {"a": 3, "b": 1}
        assert stats["completed_by_key"] == {"a": 3, "b": 1}
        # rejected submissions never touch the per-key admitted counter
        tight = AdmissionController(max_pending=0, clock=FakeClock())
        assert not tight.admit("c").allowed
        assert tight.stats()["admitted_by_key"] == {}
