"""Drain vs. client cancel: the race has a deterministic answer.

A SIGTERM drain and a client ``DELETE`` can hit the same job in either
order.  The reason precedence in ``Job.request_cancel`` makes the outcome
order-independent: the stream ends with exactly one terminal event and it
reports ``"cancelled"`` (the client's intent), never an arrival-order
dependent ``"shutdown"``.
"""

import threading

import pytest

from repro.api import CorrectionTask, Job
from repro.service import VerificationService

TERMINALS = ("JobCompleted", "JobCancelled", "JobFailed")


class TestReasonPrecedence:
    def _job(self) -> Job:
        return Job("job-race", CorrectionTask(code="steane"))

    def test_first_request_always_sets_the_reason(self):
        job = self._job()
        assert job.request_cancel(reason="shutdown") is True
        assert job._requested_reason == "shutdown"

    def test_client_cancel_overrides_a_prior_drain(self):
        job = self._job()
        job.request_cancel(reason="shutdown")
        job.request_cancel(reason="cancelled")
        assert job._requested_reason == "cancelled"

    def test_drain_does_not_demote_a_client_cancel(self):
        job = self._job()
        job.request_cancel(reason="cancelled")
        job.request_cancel(reason="shutdown")
        assert job._requested_reason == "cancelled"

    def test_deadline_outranks_shutdown_but_not_cancelled(self):
        job = self._job()
        job.request_cancel(reason="deadline")
        job.request_cancel(reason="shutdown")
        assert job._requested_reason == "deadline"
        job.request_cancel(reason="cancelled")
        assert job._requested_reason == "cancelled"

    def test_equal_precedence_keeps_the_first_reason(self):
        job = self._job()
        job.request_cancel(reason="deadline")
        job.request_cancel(reason="budget")
        assert job._requested_reason == "deadline"

    def test_terminal_event_reports_the_winning_reason(self):
        job = self._job()
        job.request_cancel(reason="shutdown")
        job.request_cancel(reason="cancelled")
        job._finish_cancelled("cancelled")
        terminal = list(job.events())[-1]
        assert type(terminal).__name__ == "JobCancelled"
        assert terminal.reason == "cancelled"


class RaceHarness:
    """A live service whose stop can be requested without joining yet."""

    def __init__(self):
        self.service = VerificationService(port=0, drain_grace=5.0)
        self.summary = None
        self._ready = threading.Event()
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        import asyncio

        async def main():
            await self.service.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            self.summary = await self.service.serve_forever(
                install_signal_handlers=False
            )

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "service failed to start"
        return self

    def request_stop(self):
        try:
            self._loop.call_soon_threadsafe(self.service.request_stop)
        except RuntimeError:
            pass  # loop already closed: the server has fully drained

    def join(self):
        self._thread.join(60)
        assert not self._thread.is_alive(), "service failed to drain"

    def __exit__(self, *exc_info):
        self.request_stop()
        self.join()

    def client(self, **kwargs):
        from repro.service import ServiceClient

        return ServiceClient("127.0.0.1", self.service.port, **kwargs)


@pytest.mark.parametrize("order", ["cancel-then-drain", "drain-then-cancel"])
def test_drain_and_delete_race_reports_cancelled(order):
    with RaceHarness() as harness:
        client = harness.client(api_key="race", retries=3, backoff=0.01)
        job = client.submit({"kind": "distance", "code": "surface-5"})

        # Open the stream before the race so it survives the server's exit
        # (streams opened pre-drain are served through to their terminal
        # event).
        stream = client.events(job["id"])
        events = [next(stream)]
        assert events[0]["event"] == "JobSubmitted"

        if order == "cancel-then-drain":
            client.cancel(job["id"])
            harness.request_stop()
        else:
            harness.request_stop()
            client.cancel(job["id"])

        events.extend(stream)
        terminals = [e for e in events if e["event"] in TERMINALS]
        assert len(terminals) == 1, events
        assert terminals[0]["event"] == "JobCancelled"
        assert terminals[0]["reason"] == "cancelled"

        harness.join()
        # The drain saw the job already terminal (the client's cancel), so
        # nothing was shutdown-cancelled and nothing was orphaned.
        assert harness.summary["orphaned"] == 0
        assert harness.summary["cancelled"] == 0
