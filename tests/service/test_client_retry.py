"""Unit tests for the client's retry loop — no sockets, stubbed transport.

The contract under test: 429/503 honour ``Retry-After`` (clamped to the
backoff cap), transport errors retry only idempotent calls (GET/DELETE, or
a POST carrying an ``X-Idempotency-Key``), the jitter sequence is
deterministic per ``retry_seed``, and :meth:`ServiceClient.submit` attaches
a generated key exactly when the client would retry.
"""

import time

import pytest

from repro.service import ServiceClient, ServiceError


def _client(**kwargs) -> ServiceClient:
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("backoff", 0.1)
    kwargs.setdefault("backoff_cap", 1.0)
    return ServiceClient("127.0.0.1", 1, **kwargs)


class Transport:
    """Scripted ``_request_once``: pops one outcome per call."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    def __call__(self, method, path, body=None, headers=None):
        self.calls.append((method, path, headers))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


@pytest.fixture
def sleeps(monkeypatch):
    recorded = []
    monkeypatch.setattr(time, "sleep", recorded.append)
    return recorded


def _throttle(after=None):
    headers = {} if after is None else {"retry-after": str(after)}
    return ServiceError(429, {"error": "throttled"}, headers)


class TestBackoffDelay:
    def test_same_seed_same_sequence(self):
        first = [_client(retry_seed=9)._backoff_delay(n) for n in range(5)]
        second = [_client(retry_seed=9)._backoff_delay(n) for n in range(5)]
        assert first == second

    def test_different_seeds_decorrelate(self):
        a = [_client(retry_seed=1)._backoff_delay(n) for n in range(5)]
        b = [_client(retry_seed=2)._backoff_delay(n) for n in range(5)]
        assert a != b

    def test_delay_is_exponential_jittered_and_capped(self):
        client = _client(backoff=0.1, backoff_cap=1.0)
        for attempt in range(8):
            base = min(1.0, 0.1 * (2 ** attempt))
            delay = client._backoff_delay(attempt)
            assert base / 2 <= delay <= base
        assert client._backoff_delay(20) <= 1.0


class TestStatusRetries:
    def test_429_honours_retry_after(self, sleeps):
        client = _client()
        client._request_once = Transport(
            [_throttle(0.5), _throttle(0.25), {"ok": True}]
        )
        assert client.request("GET", "/stats") == {"ok": True}
        assert sleeps == [0.5, 0.25]

    def test_retry_after_is_clamped_to_the_cap(self, sleeps):
        client = _client(backoff_cap=1.0)
        client._request_once = Transport([_throttle(100), {"ok": True}])
        client.request("GET", "/stats")
        assert sleeps == [1.0]

    def test_missing_retry_after_uses_jittered_backoff(self, sleeps):
        client = _client(retry_seed=4)
        client._request_once = Transport([_throttle(), {"ok": True}])
        client.request("GET", "/stats")
        assert sleeps == [_client(retry_seed=4)._backoff_delay(0)]

    def test_503_is_retried_but_400_is_not(self, sleeps):
        client = _client()
        client._request_once = Transport(
            [ServiceError(503, {"error": "draining"}, {}), {"ok": True}]
        )
        assert client.request("GET", "/stats") == {"ok": True}

        client._request_once = Transport([ServiceError(400, {"error": "bad"}, {})])
        with pytest.raises(ServiceError) as exc:
            client.request("GET", "/stats")
        assert exc.value.status == 400
        assert len(sleeps) == 1  # only the 503 slept; the 400 raised at once

    def test_retries_zero_preserves_fail_fast(self, sleeps):
        client = _client(retries=0)
        client._request_once = Transport([_throttle(0.5)])
        with pytest.raises(ServiceError):
            client.request("GET", "/stats")
        assert sleeps == []

    def test_budget_exhaustion_reraises_the_last_error(self, sleeps):
        client = _client(retries=2)
        client._request_once = Transport([_throttle(0.1)] * 3)
        with pytest.raises(ServiceError):
            client.request("GET", "/stats")
        assert sleeps == [0.1, 0.1]


class TestTransportRetries:
    def test_get_and_delete_are_retried(self, sleeps):
        for method in ("GET", "DELETE"):
            client = _client()
            client._request_once = Transport(
                [ConnectionResetError(), {"ok": True}]
            )
            assert client.request(method, "/jobs/j1") == {"ok": True}

    def test_plain_post_is_never_retried_on_transport_error(self, sleeps):
        # The job may have been created before the response was lost; a
        # blind resubmit would double-run it.
        client = _client()
        client._request_once = Transport([ConnectionResetError()])
        with pytest.raises(ConnectionResetError):
            client.request("POST", "/jobs", {"task": {}})
        assert sleeps == []

    def test_post_with_idempotency_key_is_retried(self, sleeps):
        client = _client()
        transport = Transport([ConnectionResetError(), {"id": "job-1"}])
        client._request_once = transport
        payload = client.request(
            "POST", "/jobs", {"task": {}}, headers={"X-Idempotency-Key": "k1"}
        )
        assert payload == {"id": "job-1"}
        assert len(transport.calls) == 2


class TestSubmitIdempotencyKey:
    def _submitted_headers(self, client, **submit_kwargs):
        transport = Transport([{"id": "job-1"}])
        client._request_once = transport
        client.submit({"kind": "correction", "code": "steane"}, **submit_kwargs)
        return transport.calls[0][2]

    def test_retrying_client_generates_a_key(self):
        headers = self._submitted_headers(_client(retries=2))
        assert headers and len(headers["X-Idempotency-Key"]) == 32

    def test_fail_fast_client_sends_no_key(self):
        assert self._submitted_headers(_client(retries=0)) is None

    def test_explicit_key_is_passed_through_even_without_retries(self):
        headers = self._submitted_headers(
            _client(retries=0), idempotency_key="mine"
        )
        assert headers == {"X-Idempotency-Key": "mine"}


class EventStreams:
    """Scripted ``_event_lines_once``: one scripted connection per call."""

    def __init__(self, connections):
        self.connections = list(connections)
        self.opened = 0

    def __call__(self, job_id):
        self.opened += 1
        for item in self.connections.pop(0):
            if isinstance(item, Exception):
                raise item
            yield item


def _line(seq, event="Progress"):
    return f'{{"event": "{event}", "seq": {seq}}}'.encode()


class TestEventsReconnect:
    def test_reconnect_resumes_and_dedupes_by_seq(self, sleeps):
        client = _client(retries=3)
        client._event_lines_once = EventStreams(
            [
                [_line(0), _line(1), ConnectionResetError()],
                # The server replays from the start; the client must skip
                # the prefix it already delivered.
                [_line(0), _line(1), _line(2), _line(3, "JobCompleted")],
            ]
        )
        events = list(client.events("job-1"))
        assert [e["seq"] for e in events] == [0, 1, 2, 3]
        assert events[-1]["event"] == "JobCompleted"
        assert client._event_lines_once.opened == 2

    def test_clean_eof_without_terminal_is_a_transport_error(self, sleeps):
        # A reset before the first chunk reads as an empty 200 body; the
        # stream contract (ends with a terminal event) exposes the break.
        client = _client(retries=1)
        client._event_lines_once = EventStreams(
            [[], [_line(0), _line(1, "JobCancelled")]]
        )
        events = list(client.events("job-1"))
        assert [e["event"] for e in events] == ["Progress", "JobCancelled"]

    def test_reconnect_budget_defaults_to_retries(self):
        client = _client(retries=0)
        client._event_lines_once = EventStreams([[ConnectionResetError()]])
        with pytest.raises(ConnectionResetError):
            list(client.events("job-1"))

    def test_reconnects_override_is_exhaustible(self, sleeps):
        client = _client(retries=5)
        client._event_lines_once = EventStreams(
            [[ConnectionResetError()], [ConnectionResetError()]]
        )
        with pytest.raises(ConnectionResetError):
            list(client.events("job-1", reconnects=1))
        assert client._event_lines_once.opened == 2

    def test_terminal_event_stops_the_stream(self):
        client = _client()
        client._event_lines_once = EventStreams(
            [[_line(0), _line(1, "JobFailed"), _line(2)]]
        )
        events = list(client.events("job-1"))
        assert [e["seq"] for e in events] == [0, 1]  # nothing after terminal
