"""The sharded dispatcher: lane routing, family templates, clause absorption.

Lane affinity is the concurrency-safety invariant under test: every task on
one code (or one code *family* — family members absorb each other's learnt
clauses, so they must share a thread) routes to the same lane, forever.  On
top of routing, the family warm-start path is held to the usual equivalence
bar: absorption may only ever add clauses the target session already
entails, so verdicts match a fresh engine's byte for byte.
"""

import threading

import pytest

from repro.api import CorrectionTask, DetectionTask, DistanceTask, Engine
from repro.api.jobs import JobStatus, ShardedJobExecutor
from repro.api.resources import ResourceManager
from repro.codes.registry import CODE_REGISTRY, family_of, family_siblings


class TestFamilyRegistry:
    def test_family_members_are_tagged(self):
        assert family_of("surface-3") == "surface"
        assert family_of("surface-5") == "surface"
        assert family_of("steane") is None
        assert family_of("not-a-code") is None

    def test_siblings_are_smaller_and_ordered(self):
        assert family_siblings("surface-5") == ["surface-3"]
        assert family_siblings("surface-3") == []  # nothing smaller
        assert family_siblings("six-qubit") == ["five-qubit"]
        assert family_siblings("steane") == []

    def test_ranks_order_every_family(self):
        families: dict[str, list[int]] = {}
        for entry in CODE_REGISTRY.values():
            if entry.family:
                families.setdefault(entry.family, []).append(entry.family_rank)
        for family, ranks in families.items():
            assert len(set(ranks)) == len(ranks), f"duplicate rank in {family}"


class TestShardRouting:
    def test_same_code_always_routes_to_same_lane(self):
        manager = ResourceManager()
        manager.configure_shards(4)
        lanes = {manager.shard_for_task(CorrectionTask(code="steane")) for _ in range(10)}
        assert len(lanes) == 1

    def test_family_members_share_a_lane(self):
        manager = ResourceManager()
        manager.configure_shards(4)
        surface_3 = manager.shard_for_task(DistanceTask(code="surface-3"))
        surface_5 = manager.shard_for_task(CorrectionTask(code="surface-5"))
        assert surface_3 == surface_5
        five = manager.shard_for_task(CorrectionTask(code="five-qubit"))
        six = manager.shard_for_task(CorrectionTask(code="six-qubit"))
        assert five == six

    def test_codeless_tasks_pin_to_lane_zero(self):
        manager = ResourceManager()
        manager.configure_shards(4)
        assert manager.shard_for_task(object()) == 0

    def test_distinct_codes_spread_over_lanes(self):
        manager = ResourceManager()
        manager.configure_shards(4)
        keys = ["steane", "shor", "surface-3", "gottesman-8", "repetition-5",
                "reed-muller-4", "xzzx-3", "color-832"]
        lanes = {key: manager.shard_for(manager.shard_key(key)) for key in keys}
        # Sticky least-loaded assignment: 8 keys over 4 lanes never piles
        # more than a fair share plus one onto any single lane.
        per_lane = [list(lanes.values()).count(lane) for lane in range(4)]
        assert max(per_lane) <= 3
        assert sum(per_lane) == len(keys)
        # ... and the assignment is sticky across repeat lookups.
        assert lanes == {key: manager.shard_for(manager.shard_key(key)) for key in keys}

    def test_one_lane_collapses_to_serial(self):
        manager = ResourceManager()
        manager.configure_shards(1)
        assert manager.shard_for_task(CorrectionTask(code="steane")) == 0
        assert manager.shard_for_task(CorrectionTask(code="shor")) == 0


class TestFamilyAbsorption:
    def test_surface_5_absorbs_from_surface_3(self):
        engine = Engine(backend="serial")
        engine.run(CorrectionTask(code="surface-3", max_errors=1))
        result = engine.run(CorrectionTask(code="surface-5", max_errors=1))
        assert result.verified is True
        assert result.details.get("family_absorbed", 0) > 0
        stats = engine.resources.stats()
        assert stats["family_absorbed"] > 0
        assert stats["family_probes"] >= stats["family_absorbed"]

    def test_absorption_preserves_verdicts(self):
        """The equivalence bar: a warm-started family member returns exactly
        the verdict a fresh engine returns, for verified and falsified
        queries alike."""
        warm = Engine(backend="serial")
        warm.run(CorrectionTask(code="surface-3", max_errors=1))
        warm.run(DetectionTask(code="surface-3"))
        for task in (
            CorrectionTask(code="surface-5", max_errors=1),
            CorrectionTask(code="surface-5", max_errors=2),
            # over-claimed: weight-3 correction on a d=5 code must FAIL,
            # absorbed clauses or not
            CorrectionTask(code="surface-5", max_errors=3),
            DetectionTask(code="surface-5"),
        ):
            fresh_verdict = Engine(backend="serial").run(task).verified
            assert warm.run(task).verified == fresh_verdict, task

    def test_distance_walk_probes_siblings_and_agrees(self):
        """The walk offers sibling clauses under its detection-base guard.
        Entailment there is NOT guaranteed (the base admits any weight, so a
        sibling's weight-bounded correction clauses usually fail the probe) —
        what is guaranteed is that probing never corrupts the walk."""
        warm = Engine(backend="serial")
        warm.run(CorrectionTask(code="surface-3", max_errors=1))
        result = warm.run(DistanceTask(code="surface-5"))
        assert result.details["distance"] == 5
        assert warm.resources.stats().get("family_probes", 0) > 0

    def test_no_family_no_absorption(self):
        engine = Engine(backend="serial")
        engine.run(CorrectionTask(code="five-qubit", max_errors=1))
        result = engine.run(CorrectionTask(code="steane", max_errors=1))
        assert "family_absorbed" not in result.details
        assert "family_absorbed" not in engine.resources.stats()

    def test_absorption_is_idempotent_across_runs(self):
        engine = Engine(backend="serial")
        engine.run(CorrectionTask(code="surface-3", max_errors=1))
        first = engine.run(CorrectionTask(code="surface-5", max_errors=1))
        absorbed = first.details.get("family_absorbed", 0)
        assert absorbed > 0
        # The sibling high-water mark means a re-run (no new sibling clauses)
        # offers nothing new — no duplicate absorption, verdict unchanged.
        again = engine.run(CorrectionTask(code="surface-5", max_errors=1))
        assert again.verified is True
        assert again.details.get("family_absorbed", 0) == 0


class TestShardedExecutor:
    def _engine(self, lanes=4):
        return Engine(backend="serial", lanes=lanes)

    def test_jobs_route_to_their_code_lane(self):
        engine = self._engine()
        try:
            jobs = [
                engine.submit(CorrectionTask(code=key))
                for key in ("steane", "shor", "five-qubit", "surface-3")
            ]
            for job in jobs:
                assert job.result(timeout=120).verified is True
            expected = {
                job: engine.resources.shard_for_task(job.task) for job in jobs
            }
            for job, lane in expected.items():
                assert job.lane == lane
        finally:
            engine.close()

    def test_lane_threads_are_named(self):
        engine = self._engine()
        try:
            job = engine.submit(CorrectionTask(code="steane"))
            job.result(timeout=120)
            lane = job.lane
            names = {thread.name for thread in threading.enumerate()}
            assert f"repro-lane-{lane}" in names
        finally:
            engine.close()

    def test_solver_stats_events_carry_the_lane(self):
        engine = self._engine()
        try:
            job = engine.submit(CorrectionTask(code="steane"))
            job.result(timeout=120)
            stats = [e for e in job.events(timeout=10) if type(e).__name__ == "SolverStats"]
            assert stats and all(event.lane == job.lane for event in stats)
        finally:
            engine.close()

    def test_lane_stats_flow_through_resource_stats(self):
        engine = self._engine()
        try:
            for key in ("steane", "shor", "surface-3", "five-qubit"):
                engine.submit(CorrectionTask(code=key)).result(timeout=120)
            stats = engine.resources.stats()
            lanes = stats["lanes"]
            assert [entry["lane"] for entry in lanes] == list(range(4))
            assert sum(entry["jobs_completed"] for entry in lanes) == 4
            assert sum(entry["busy_seconds"] for entry in lanes) > 0
            assert all(entry["queue_depth"] == 0 for entry in lanes)
            claimed = [key for entry in lanes for key in entry["shard_keys"]]
            assert sorted(claimed) == sorted(
                {"steane", "shor", "surface", "perfect"}
            )
        finally:
            engine.close()

    def test_shutdown_cancels_queued_jobs(self):
        engine = self._engine()
        executor = ShardedJobExecutor(engine, lanes=2, autostart=False)
        from repro.api.jobs import Job

        jobs = [
            Job(f"job-q{i}", CorrectionTask(code="steane")) for i in range(3)
        ]
        for job in jobs:
            executor.submit(job)
        assert executor.pending() == 3
        executor.shutdown(wait=True)
        for job in jobs:
            assert job.status is JobStatus.CANCELLED
            assert job.cancel_reason == "shutdown"
        with pytest.raises(RuntimeError):
            executor.submit(Job("job-late", CorrectionTask(code="steane")))

    def test_concurrent_jobs_on_distinct_codes_all_succeed(self):
        engine = self._engine()
        try:
            keys = ["steane", "shor", "five-qubit", "surface-3",
                    "gottesman-8", "repetition-5"]
            jobs = [engine.submit(CorrectionTask(code=key)) for key in keys]
            for key, job in zip(keys, jobs):
                result = job.result(timeout=300)
                fresh = Engine(backend="serial").run(CorrectionTask(code=key))
                assert result.verified == fresh.verified, key
        finally:
            engine.close()

    def test_blocking_run_serializes_against_the_same_lane(self):
        """Engine.run and a background job on the SAME code must not race:
        both go through the code's lane lock."""
        engine = self._engine()
        try:
            job = engine.submit(DistanceTask(code="surface-3"))
            # While that runs (or queues), a blocking call on the same code
            # still returns the right answer.
            blocking = engine.run(CorrectionTask(code="surface-3", max_errors=1))
            assert blocking.verified is True
            assert job.result(timeout=300).details["distance"] == 3
        finally:
            engine.close()
