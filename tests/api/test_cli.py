"""CLI smoke tests: every subcommand, text and JSON output, module entry."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestListCodes:
    def test_text_output(self, capsys):
        assert main(["list-codes"]) == 0
        out = capsys.readouterr().out
        assert "steane" in out and "[[7,1,3]]" in out and "correction" in out

    def test_json_output(self, capsys):
        assert main(["list-codes", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        keys = {row["key"] for row in rows}
        assert {"steane", "five-qubit", "surface-3"} <= keys
        steane = next(row for row in rows if row["key"] == "steane")
        assert steane["parameters"] == [7, 1, 3]


class TestVerify:
    def test_verify_steane_json(self, capsys):
        assert main(["verify", "--code", "steane", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verified"] is True
        assert payload["task"] == "accurate-correction"
        assert payload["subject"] == "steane"

    def test_verify_counterexample_exit_code(self, capsys):
        assert main(["verify", "--code", "steane", "--max-errors", "2"]) == 1
        out = capsys.readouterr().out
        assert "COUNTEREXAMPLE" in out and "counterexample qubits" in out

    def test_verify_detection_target_default(self, capsys):
        # detection-422's registry target is detection, so --task may be omitted.
        assert main(["verify", "--code", "detection-422", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["task"] == "precise-detection"

    def test_verify_constrained(self, capsys):
        assert main(
            ["verify", "--code", "surface-3", "--locality", "--discreteness",
             "--error-model", "Y", "--seed", "1", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["task"] == "constrained-correction"
        assert payload["details"]["constraints"] == ["locality", "discreteness"]

    def test_verify_parallel_workers(self, capsys):
        assert main(
            ["verify", "--code", "steane", "--error-model", "Y", "--workers", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "parallel"

    def test_unknown_code_errors(self):
        with pytest.raises(SystemExit):
            main(["verify", "--code", "no-such-code"])

    def test_inapplicable_flags_rejected(self):
        # Correction-only flags on a detection task, and vice versa.
        with pytest.raises(SystemExit, match="--locality"):
            main(["verify", "--code", "detection-422", "--locality"])
        with pytest.raises(SystemExit, match="--max-errors"):
            main(["verify", "--code", "steane", "--task", "detection", "--max-errors", "1"])
        with pytest.raises(SystemExit, match="--trial-distance"):
            main(["verify", "--code", "steane", "--trial-distance", "3"])

    def test_invalid_trial_distance_clean_error(self, capsys):
        assert main(["verify", "--code", "steane", "--task", "detection",
                     "--trial-distance", "1"]) == 2
        assert "trial_distance must be at least 2" in capsys.readouterr().err


class TestDistance:
    def test_distance_text(self, capsys):
        assert main(["distance", "--code", "steane", "--max-trial", "5"]) == 0
        out = capsys.readouterr().out
        assert "distance 3" in out
        assert "conflicts" in out and "decisions" in out and "propagations" in out

    def test_distance_json(self, capsys):
        assert main(["distance", "--code", "steane", "--max-trial", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["details"]["distance"] == 3
        assert payload["details"]["base_encodings"] == 1
        assert payload["decisions"] >= 0 and payload["propagations"] > 0

    def test_distance_parallel_workers(self, capsys):
        assert main(
            ["distance", "--code", "steane", "--max-trial", "5", "--workers", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["details"]["distance"] == 3
        assert payload["backend"] == "parallel"
        assert payload["details"]["num_workers"] == 2

    def test_distance_workers_text_names_backend(self, capsys):
        assert main(
            ["distance", "--code", "steane", "--max-trial", "5", "--workers", "2"]
        ) == 0
        assert "backend=parallel" in capsys.readouterr().out


class TestSweep:
    def test_sweep_json(self, capsys):
        assert main(["sweep", "--codes", "steane,five-qubit", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_tasks"] == 2 and payload["num_verified"] == 2
        assert [row["subject"] for row in payload["results"]] == ["steane", "five-qubit"]

    def test_sweep_text(self, capsys):
        assert main(["sweep", "--codes", "steane,detection-422"]) == 0
        out = capsys.readouterr().out
        assert "sweep: 2/2 verified" in out

    def test_sweep_with_jobs_and_parallel_backend(self, capsys):
        assert main(
            ["sweep", "--codes", "steane,five-qubit,six-qubit", "--jobs", "2",
             "--backend", "parallel", "--workers", "2"]
        ) == 0
        assert "backend=parallel, jobs=2" in capsys.readouterr().out


def test_module_entry_point():
    """`python -m repro list-codes` works as a subprocess (the shipped UX)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "list-codes"],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "steane" in proc.stdout


class TestStreaming:
    def _stream_lines(self, capsys):
        return [line for line in capsys.readouterr().out.splitlines() if line.strip()]

    def test_verify_stream_is_schema_valid_ndjson(self, capsys):
        from repro.api.events import validate_stream

        assert main(["verify", "--code", "steane", "--stream"]) == 0
        lines = self._stream_lines(capsys)
        count, by_type, errors = validate_stream(lines)
        assert errors == []
        assert by_type["JobCompleted"] == 1
        assert json.loads(lines[0])["event"] == "JobSubmitted"

    def test_distance_stream_carries_probes(self, capsys):
        from repro.api.events import validate_stream

        assert main(["distance", "--code", "steane", "--max-trial", "5", "--stream"]) == 0
        lines = self._stream_lines(capsys)
        _, by_type, errors = validate_stream(lines)
        assert errors == []
        assert by_type["DistanceProbe"] >= 1

    def test_sweep_stream_multiplexes_jobs(self, capsys):
        from repro.api.events import validate_stream

        assert main(["sweep", "--codes", "steane,five-qubit", "--stream"]) == 0
        lines = self._stream_lines(capsys)
        _, by_type, errors = validate_stream(lines)
        assert errors == []
        assert by_type["JobSubmitted"] == 2
        assert by_type["JobCompleted"] == 2

    def test_stream_counterexample_exit_code(self, capsys):
        assert main([
            "verify", "--code", "steane", "--max-errors", "3", "--stream",
        ]) == 1
        payloads = [json.loads(line) for line in self._stream_lines(capsys)]
        completed = [p for p in payloads if p["event"] == "JobCompleted"]
        assert completed and completed[0]["verified"] is False

    def test_expired_deadline_exits_3(self, capsys):
        assert main([
            "verify", "--code", "steane", "--deadline", "0.0",
        ]) == 3
        assert "cancelled" in capsys.readouterr().err

    def test_stream_deadline_emits_cancelled_event(self, capsys):
        assert main([
            "distance", "--code", "surface-5", "--deadline", "0.0", "--stream",
        ]) == 3
        payloads = [json.loads(line) for line in self._stream_lines(capsys)]
        assert payloads[-1]["event"] == "JobCancelled"
        assert payloads[-1]["reason"] == "deadline"

    def test_distance_strategy_flag(self, capsys):
        assert main([
            "distance", "--code", "steane", "--max-trial", "16",
            "--strategy", "galloping", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["details"]["strategy"] == "galloping"
        assert payload["details"]["distance"] == 3


class TestValidateEventsCommand:
    def test_validates_file(self, tmp_path, capsys):
        stream = tmp_path / "events.ndjson"
        assert main(["verify", "--code", "five-qubit", "--stream"]) == 0
        stream.write_text(capsys.readouterr().out)
        assert main(["validate-events", str(stream)]) == 0
        assert "validated" in capsys.readouterr().out

    def test_rejects_garbage(self, tmp_path, capsys):
        stream = tmp_path / "bad.ndjson"
        stream.write_text('{"event": "JobCompleted", "schema_version": "99"}\n')
        assert main(["validate-events", str(stream)]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_rejects_empty_input(self, tmp_path, capsys):
        stream = tmp_path / "empty.ndjson"
        stream.write_text("")
        assert main(["validate-events", str(stream)]) == 1
