"""Task objects: coercion, hashing, validation."""

import pytest

from repro.api import (
    ConstrainedTask,
    CorrectionTask,
    DetectionTask,
    DistanceTask,
    FixedErrorTask,
    ProgramTask,
    resolve_code,
)
from repro.codes import steane_code
from repro.verifier.encodings import ErrorModel


class TestCoercion:
    def test_error_model_strings_are_coerced(self):
        assert CorrectionTask(code="steane", error_model="Y").error_model == ErrorModel("Y")
        assert DetectionTask(code="steane", error_model=ErrorModel("X")).error_model.kind == "X"

    def test_error_model_coerce_helper(self):
        assert ErrorModel.coerce("Z") == ErrorModel("Z")
        assert ErrorModel.coerce(ErrorModel("any")) is not None
        with pytest.raises(TypeError):
            ErrorModel.coerce(42)
        with pytest.raises(ValueError):
            ErrorModel.coerce("W")

    def test_sequences_become_tuples(self):
        task = ConstrainedTask(code="steane", locality=True, allowed_qubits=[0, 1, 2])
        assert task.allowed_qubits == (0, 1, 2)
        fixed = FixedErrorTask(code="steane", error_qubits=((3, "Y"), (1, "X")))
        assert fixed.error_qubits == ((1, "X"), (3, "Y"))  # sorted
        assert fixed.error_map == {1: "X", 3: "Y"}


class TestHashing:
    def test_registry_key_tasks_are_hashable_and_equal_by_value(self):
        a = CorrectionTask(code="steane", max_errors=1, error_model="Y")
        b = CorrectionTask(code="steane", max_errors=1, error_model=ErrorModel("Y"))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_different_options_are_different_tasks(self):
        assert CorrectionTask(code="steane") != CorrectionTask(code="steane", max_errors=2)
        assert DetectionTask(code="steane", trial_distance=3) != DetectionTask(
            code="steane", trial_distance=4
        )


class TestValidation:
    def test_empty_code_key_rejected(self):
        with pytest.raises(ValueError):
            CorrectionTask(code="")

    def test_negative_max_errors_rejected(self):
        with pytest.raises(ValueError):
            CorrectionTask(code="steane", max_errors=-1)

    def test_trial_distance_below_two_rejected(self):
        with pytest.raises(ValueError):
            DetectionTask(code="steane", trial_distance=1)

    def test_program_task_requires_triple(self):
        with pytest.raises(ValueError):
            ProgramTask()

    def test_describe_names_the_task(self):
        text = DistanceTask(code="steane", max_trial=5).describe()
        assert "DistanceTask" in text and "steane" in text


class TestResolveCode:
    def test_resolves_registry_key(self):
        assert resolve_code("steane").name == "steane"

    def test_passes_through_instances(self):
        code = steane_code()
        assert resolve_code(code) is code

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_code(7)
        with pytest.raises(KeyError):
            resolve_code("no-such-code")

    def test_code_name_without_building(self):
        assert CorrectionTask(code="steane").code_name == "steane"
        assert CorrectionTask(code=steane_code()).code_name == "steane"
