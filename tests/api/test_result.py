"""The unified Result: JSON round-trip and legacy report conversion."""

import json

from repro.api import CorrectionTask, Engine, Result
from repro.verifier.report import VerificationReport


def test_json_round_trip_verified():
    result = Engine().run(CorrectionTask(code="steane"))
    restored = Result.from_json(result.to_json())
    assert restored.verified is True
    assert restored.task == result.task == "accurate-correction"
    assert restored.subject == "steane"
    assert restored.details["max_errors"] == 1
    assert restored.num_variables == result.num_variables
    assert restored.backend == "serial"
    # The full solver statistics survive the round trip.
    assert restored.conflicts == result.conflicts
    assert restored.decisions == result.decisions > 0
    assert restored.propagations == result.propagations > 0
    assert restored.session_stats() == result.session_stats()


def test_json_round_trip_counterexample():
    result = Engine().run(CorrectionTask(code="steane", max_errors=2))
    assert not result.verified
    restored = Result.from_json(result.to_json(indent=2))
    assert restored.counterexample == result.counterexample
    assert restored.counterexample_qubits() == result.counterexample_qubits()


def test_to_json_is_plain_json():
    payload = json.loads(Engine().run(CorrectionTask(code="five-qubit")).to_json())
    assert isinstance(payload, dict)
    assert set(payload) >= {"task", "subject", "verified", "elapsed_seconds", "details"}


def test_from_dict_ignores_unknown_keys():
    restored = Result.from_dict(
        {"task": "t", "subject": "s", "verified": True, "extra_field": 1}
    )
    assert restored.verified and restored.subject == "s"


def test_report_round_trip():
    result = Engine().run(CorrectionTask(code="steane"))
    report = result.to_report()
    assert isinstance(report, VerificationReport)
    assert report.verified == result.verified
    assert report.code_name == result.subject
    assert report.details["max_errors"] == 1
    assert "VERIFIED" in report.summary()
    back = Result.from_report(report)
    assert back.verified and back.subject == "steane"
