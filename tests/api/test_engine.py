"""The engine: compile cache, batch execution, backend agreement."""

import pytest

from repro.api import (
    ConstrainedTask,
    CorrectionTask,
    DetectionTask,
    DistanceTask,
    Engine,
    FixedErrorTask,
    ParallelBackend,
    ProgramTask,
    SerialBackend,
    registry_sweep_tasks,
)
from repro.codes import steane_code
from repro.verifier.programs import correction_triple


class TestCompileCache:
    def test_identical_tasks_hit_the_cache(self):
        engine = Engine()
        task = CorrectionTask(code="steane")
        first = engine.compile_task(task)
        second = engine.compile_task(CorrectionTask(code="steane"))
        assert second is first
        info = engine.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1

    def test_run_marks_cache_hits(self):
        engine = Engine()
        assert engine.run(CorrectionTask(code="steane")).cached is False
        assert engine.run(CorrectionTask(code="steane")).cached is True

    def test_different_tasks_miss(self):
        engine = Engine()
        engine.compile_task(CorrectionTask(code="steane"))
        engine.compile_task(CorrectionTask(code="steane", max_errors=2))
        assert engine.cache_info()["misses"] == 2

    def test_cache_eviction_respects_size(self):
        engine = Engine(cache_size=1)
        engine.compile_task(CorrectionTask(code="steane"))
        engine.compile_task(CorrectionTask(code="five-qubit"))
        assert engine.cache_info()["size"] == 1

    def test_clear_cache(self):
        engine = Engine()
        engine.compile_task(CorrectionTask(code="steane"))
        engine.clear_cache()
        assert engine.cache_info()["size"] == 0

    def test_distance_task_has_no_single_formula(self):
        with pytest.raises(TypeError):
            Engine().compile_task(DistanceTask(code="steane"))

    def test_unseeded_locality_is_never_cached(self):
        # An unseeded locality constraint samples a fresh random subset per
        # compile; serving a cached formula would silently reuse one sample.
        engine = Engine()
        task = ConstrainedTask(code="surface-3", locality=True, error_model="Y")
        assert task.deterministic is False
        engine.run(task)
        assert engine.run(task).cached is False
        assert engine.cache_info()["uncacheable"] == 2

    def test_seeded_locality_is_cached(self):
        engine = Engine()
        task = ConstrainedTask(code="surface-3", locality=True, error_model="Y", seed=7)
        engine.run(task)
        assert engine.run(task).cached is True


class TestRun:
    def test_correction_and_detection(self):
        engine = Engine()
        correction = engine.run(CorrectionTask(code="steane"))
        assert correction.verified and correction.details["max_errors"] == 1
        detection = engine.run(DetectionTask(code="steane", trial_distance=3))
        assert detection.verified and detection.details["trial_distance"] == 3

    def test_counterexample_on_overclaim(self):
        result = Engine().run(CorrectionTask(code="steane", max_errors=2))
        assert not result.verified
        assert 1 <= len(result.counterexample_qubits()) <= 4

    def test_distance_task(self):
        result = Engine().run(DistanceTask(code="steane", max_trial=5))
        assert result.details["distance"] == 3
        assert result.details["trials"][-1]["verified"] is False
        # The minimum-weight undetectable error is reported as a witness;
        # `counterexample` stays reserved for unverified results.
        assert result.counterexample is None
        assert result.details["witness"]

    def test_distance_walk_encodes_the_base_exactly_once(self, monkeypatch):
        import repro.api.engine as engine_module

        calls = []
        original = engine_module.precise_detection_base

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(engine_module, "precise_detection_base", counting)
        engine = Engine()
        result = engine.run(DistanceTask(code="steane", max_trial=5))
        assert result.details["distance"] == 3
        # Binary search over weight bounds 1..4 probes mid=2 (unsat) and
        # mid=3 (sat, witness weight 3) — strictly fewer checks than the
        # three trials the linear walk needed.
        assert len(result.details["trials"]) == 2
        assert result.details["strategy"] == "binary-search"
        assert len(calls) == 1
        assert result.details["base_encodings"] == 1
        # Both probes ran through one session on one encoding.
        assert result.details["session"]["checks"] == 2
        # A second walk reuses the context's guarded base: no re-encoding.
        again = engine.run(DistanceTask(code="steane", max_trial=5))
        assert again.details["distance"] == 3
        assert len(calls) == 1

    def test_distance_task_parallel_backend(self):
        result = Engine().run(
            DistanceTask(code="steane", max_trial=5), backend=ParallelBackend(num_workers=2)
        )
        assert result.details["distance"] == 3
        assert result.backend == "parallel"
        assert result.details["num_workers"] == 2
        assert result.details["witness"]

    def test_find_distance_convenience(self):
        assert Engine().find_distance(steane_code(), max_trial=5) == 3

    def test_constrained_task_records_labels(self):
        result = Engine().run(
            ConstrainedTask(code="surface-3", locality=True, discreteness=True,
                            error_model="Y", seed=1)
        )
        assert result.verified
        assert result.details["constraints"] == ["locality", "discreteness"]

    def test_fixed_error_task(self):
        result = Engine().run(FixedErrorTask(code="steane", error_qubits=((3, "Y"),)))
        assert result.verified
        assert result.task == "fixed-error"
        assert result.details["error_qubits"] == {3: "Y"}

    def test_program_task(self):
        scenario = correction_triple(steane_code(), error="Y", max_errors=1)
        task = ProgramTask(triple=scenario.triple, decoder_condition=scenario.decoder_condition)
        result = Engine().run(task)
        assert result.verified
        assert result.task.startswith("program-logic:")
        assert result.details["num_atoms"] >= 1


class TestSessionReuse:
    def test_repeated_runs_share_one_live_solver(self):
        engine = Engine()
        task = CorrectionTask(code="steane")
        first = engine.run(task)
        second = engine.run(task)
        assert first.verified and second.verified
        assert engine.cache_info()["sessions"] == 1
        stats = second.session_stats()
        assert stats is not None and stats["checks"] == 2
        # The reused solver retained everything it learnt: deciding the same
        # already-refuted query again takes no new conflicts.
        assert second.conflicts == 0
        assert second.conflicts + first.conflicts == stats["conflicts"]

    def test_nondeterministic_tasks_get_no_session(self):
        engine = Engine()
        task = ConstrainedTask(code="surface-3", locality=True, error_model="Y")
        engine.run(task)
        engine.run(task)
        assert engine.cache_info()["sessions"] == 0

    def test_session_cache_is_bounded(self):
        engine = Engine(session_cache_size=1)
        engine.run(CorrectionTask(code="steane"))
        engine.run(CorrectionTask(code="five-qubit"))
        assert engine.cache_info()["sessions"] == 1

    def test_clear_cache_drops_sessions(self):
        engine = Engine()
        engine.run(CorrectionTask(code="steane"))
        engine.clear_cache()
        assert engine.cache_info()["sessions"] == 0

    def test_result_carries_full_solver_statistics(self):
        result = Engine().run(CorrectionTask(code="steane"))
        assert result.conflicts > 0
        assert result.decisions > 0
        assert result.propagations > 0
        assert "decisions" in result.summary() and "propagations" in result.summary()


class TestBackends:
    def test_parallel_backend_matches_serial(self):
        engine = Engine()
        task = CorrectionTask(code="steane", error_model="Y")
        serial = engine.run(task, backend=SerialBackend())
        parallel = engine.run(task, backend=ParallelBackend(num_workers=2))
        assert serial.verified and parallel.verified
        assert parallel.details["num_subtasks"] >= 1
        assert parallel.backend == "parallel"

    def test_parallel_backend_finds_counterexample(self):
        result = Engine().run(
            CorrectionTask(code="steane", max_errors=2, error_model="Y"),
            backend=ParallelBackend(num_workers=2),
        )
        assert not result.verified

    def test_distance_probes_through_custom_backends(self):
        # The incremental session walk is an in-tree optimisation; a
        # third-party Backend must still decide every trial itself.
        from repro.smt.interface import check_formula

        class CountingBackend:
            name = "counting"

            def __init__(self):
                self.calls = 0

            def check(self, compiled, session=None):
                self.calls += 1
                return check_formula(compiled.formula)

        backend = CountingBackend()
        result = Engine().run(DistanceTask(code="steane", max_trial=5), backend=backend)
        assert result.details["distance"] == 3
        assert backend.calls == 3
        assert result.backend == "counting"

    def test_backend_names_coerce(self):
        assert Engine(backend="parallel").backend.name == "parallel"
        assert Engine(backend="serial").backend.name == "serial"
        with pytest.raises(ValueError):
            Engine(backend="quantum")


class TestRunMany:
    KEYS = ["steane", "five-qubit", "detection-422"]

    def test_batch_in_process(self):
        engine = Engine()
        results = engine.run_many(registry_sweep_tasks(self.KEYS))
        assert [result.subject for result in results] == ["steane", "five-qubit", "detection-422"]
        assert all(result.verified for result in results)
        assert all(result.elapsed_seconds >= 0 for result in results)

    def test_batch_across_process_pool(self):
        engine = Engine()
        results = engine.run_many(registry_sweep_tasks(self.KEYS), processes=2)
        assert len(results) == 3 and all(result.verified for result in results)

    def test_batch_preserves_order_and_matches_serial(self):
        tasks = registry_sweep_tasks(self.KEYS)
        serial = Engine().run_many(tasks)
        pooled = Engine().run_many(tasks, processes=2)
        assert [r.verified for r in serial] == [r.verified for r in pooled]
        assert [r.subject for r in serial] == [r.subject for r in pooled]

    def test_unknown_sweep_key_rejected(self):
        with pytest.raises(KeyError):
            registry_sweep_tasks(["steane", "not-a-code"])


class TestFullRegistryAcceptance:
    def test_full_sweep_backends_agree(self):
        """Acceptance: the full registry sweep produces identical verdicts
        through the serial and the parallel backend."""
        tasks = registry_sweep_tasks()
        engine = Engine()
        serial = engine.run_many(tasks, backend=SerialBackend())
        parallel = engine.run_many(tasks, backend=ParallelBackend(num_workers=2))
        assert [r.verified for r in serial] == [r.verified for r in parallel]
        assert all(r.verified for r in serial)


class TestAdaptiveDistanceSearch:
    def test_strategies_agree_on_the_distance(self):
        for strategy in ("binary", "galloping"):
            result = Engine().run(
                DistanceTask(code="steane", max_trial=16, strategy=strategy)
            )
            assert result.details["distance"] == 3, strategy

    def test_galloping_probes_double_until_sat(self):
        result = Engine().run(
            DistanceTask(code="steane", max_trial=16, strategy="galloping")
        )
        assert result.details["strategy"] == "galloping"
        bounds = [trial["bound"] for trial in result.details["trials"]]
        # Doubling lower-bound phase; the sat probe ends it.
        assert bounds[:2] == [1, 2]
        assert all(b2 <= 2 * b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_heuristic_picks_galloping_for_wide_spans(self):
        # Span 15 >> expected distance 3: galloping.
        wide = Engine().run(DistanceTask(code="steane", max_trial=16))
        assert wide.details["strategy"] == "galloping"
        # Span 5 vs distance 5: plain bisection.
        tight = Engine().run(DistanceTask(code="surface-5", max_trial=6))
        assert tight.details["strategy"] == "binary-search"
        assert wide.details["distance"] == 3
        assert tight.details["distance"] == 5

    def test_explicit_strategy_overrides_heuristic(self):
        result = Engine().run(
            DistanceTask(code="surface-3", max_trial=4, strategy="galloping")
        )
        assert result.details["strategy"] == "galloping"
        assert result.details["distance"] == 3

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            DistanceTask(code="steane", strategy="linear")

    def test_galloping_works_on_parallel_backend(self):
        result = Engine(backend=ParallelBackend(num_workers=2)).run(
            DistanceTask(code="steane", max_trial=16, strategy="galloping")
        )
        assert result.details["distance"] == 3
        assert result.details["strategy"] == "galloping"
