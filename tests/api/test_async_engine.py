"""Native-asyncio tests for the AsyncEngine facade.

These run under ``pytest-asyncio`` in strict mode (the CI async job installs
the plugin and passes ``-o asyncio_mode=strict``); without the plugin the
module skips, and the always-on event-loop coverage lives in
``tests/api/test_jobs.py::TestAsyncFacade`` via ``asyncio.run``.
"""

import asyncio

import pytest

pytest.importorskip("pytest_asyncio")

from repro.api import (  # noqa: E402 - after the plugin gate
    AsyncEngine,
    CorrectionTask,
    DetectionTask,
    DistanceTask,
    JobCancelledError,
    JobStatus,
)

pytestmark = pytest.mark.asyncio


async def test_arun_verifies():
    async with AsyncEngine() as engine:
        result = await engine.arun(CorrectionTask(code="steane"))
    assert result.verified


async def test_event_stream_terminates():
    async with AsyncEngine() as engine:
        job = engine.submit(DistanceTask(code="steane", max_trial=5))
        names = [type(event).__name__ async for event in job.events()]
    assert names[0] == "JobSubmitted"
    assert names[-1] == "JobCompleted"
    assert names.count("JobCompleted") == 1


async def test_concurrent_jobs_multiplex_one_engine():
    async with AsyncEngine() as engine:
        results = await engine.arun_many(
            [CorrectionTask(code="steane"), DetectionTask(code="five-qubit")]
        )
    assert [result.verified for result in results] == [True, True]


async def test_cancellation_raises():
    async with AsyncEngine() as engine:
        job = engine.submit(DistanceTask(code="surface-5", max_trial=6))
        job.cancel()
        with pytest.raises(JobCancelledError):
            await job.result()
        assert job.status is JobStatus.CANCELLED


async def test_deadline_cancels():
    async with AsyncEngine() as engine:
        job = engine.submit(DistanceTask(code="surface-5"), deadline=0.01)
        with pytest.raises(JobCancelledError) as excinfo:
            await job.result()
    assert excinfo.value.reason == "deadline"


async def test_events_and_result_share_one_job():
    async with AsyncEngine() as engine:
        job = engine.submit(CorrectionTask(code="five-qubit"))

        async def drain():
            return [event.seq async for event in job.events()]

        seqs, result = await asyncio.gather(drain(), job.result())
    assert seqs == list(range(len(seqs)))
    assert result.verified


async def test_deadline_expiry_keeps_session_reusable():
    """After a mid-walk deadline cancellation the engine's shared per-code
    session must still produce the correct distance for the same task."""
    task = DistanceTask(code="surface-5", max_trial=6)
    async with AsyncEngine() as engine:
        job = engine.submit(task, deadline=0.01)
        with pytest.raises(JobCancelledError) as excinfo:
            await job.result()
        assert excinfo.value.reason == "deadline"
        result = await engine.arun(task)
    assert result.verified
    assert result.details["distance"] == 5


async def test_request_cancel_is_terminal_aware():
    async with AsyncEngine() as engine:
        done = engine.submit(CorrectionTask(code="steane"))
        await done.result()
        assert done.request_cancel() is False  # terminal: the 409 signal
        live = engine.submit(DistanceTask(code="surface-5", max_trial=6))
        assert live.request_cancel() is True
        with pytest.raises(JobCancelledError):
            await live.result()


async def test_abandoned_stream_does_not_wedge_the_job():
    """An event consumer that goes away mid-stream (the async analogue of a
    client disconnect) must not stop the job or poison later consumers."""
    async with AsyncEngine() as engine:
        job = engine.submit(DistanceTask(code="surface-3"))
        stream = job.events()
        first = await anext(stream)
        assert type(first).__name__ == "JobSubmitted"
        await stream.aclose()  # hang up after one event
        result = await job.result()
        assert result.verified
        # a late subscriber still gets the full, terminal-capped replay
        names = [type(event).__name__ async for event in job.events()]
    assert names[0] == "JobSubmitted"
    assert names[-1] == "JobCompleted"
