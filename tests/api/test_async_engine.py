"""Native-asyncio tests for the AsyncEngine facade.

These run under ``pytest-asyncio`` in strict mode (the CI async job installs
the plugin and passes ``-o asyncio_mode=strict``); without the plugin the
module skips, and the always-on event-loop coverage lives in
``tests/api/test_jobs.py::TestAsyncFacade`` via ``asyncio.run``.
"""

import asyncio

import pytest

pytest.importorskip("pytest_asyncio")

from repro.api import (  # noqa: E402 - after the plugin gate
    AsyncEngine,
    CorrectionTask,
    DetectionTask,
    DistanceTask,
    JobCancelledError,
    JobStatus,
)

pytestmark = pytest.mark.asyncio


async def test_arun_verifies():
    async with AsyncEngine() as engine:
        result = await engine.arun(CorrectionTask(code="steane"))
    assert result.verified


async def test_event_stream_terminates():
    async with AsyncEngine() as engine:
        job = engine.submit(DistanceTask(code="steane", max_trial=5))
        names = [type(event).__name__ async for event in job.events()]
    assert names[0] == "JobSubmitted"
    assert names[-1] == "JobCompleted"
    assert names.count("JobCompleted") == 1


async def test_concurrent_jobs_multiplex_one_engine():
    async with AsyncEngine() as engine:
        results = await engine.arun_many(
            [CorrectionTask(code="steane"), DetectionTask(code="five-qubit")]
        )
    assert [result.verified for result in results] == [True, True]


async def test_cancellation_raises():
    async with AsyncEngine() as engine:
        job = engine.submit(DistanceTask(code="surface-5", max_trial=6))
        job.cancel()
        with pytest.raises(JobCancelledError):
            await job.result()
        assert job.status is JobStatus.CANCELLED


async def test_deadline_cancels():
    async with AsyncEngine() as engine:
        job = engine.submit(DistanceTask(code="surface-5"), deadline=0.01)
        with pytest.raises(JobCancelledError) as excinfo:
            await job.result()
    assert excinfo.value.reason == "deadline"


async def test_events_and_result_share_one_job():
    async with AsyncEngine() as engine:
        job = engine.submit(CorrectionTask(code="five-qubit"))

        async def drain():
            return [event.seq async for event in job.events()]

        seqs, result = await asyncio.gather(drain(), job.result())
    assert seqs == list(range(len(seqs)))
    assert result.verified
