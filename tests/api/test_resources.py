"""The engine-owned resource layer: shared per-code contexts, persistent
pools, warm cache, and binary-search distance discovery.

The load-bearing property is cross-task equivalence: a task decided on a
shared per-code session (its formula guarded behind a task selector, learnt
clauses flowing in from *other* task kinds) must return exactly the verdict a
fresh dedicated solver returns — for every registry code, in both task
orders, and after guard-heavy traffic (the guard-leak case).
"""

import pytest

from repro.api import (
    CorrectionTask,
    DetectionTask,
    DistanceTask,
    Engine,
    ParallelBackend,
    SerialBackend,
    SessionCache,
    registry_sweep_tasks,
)
from repro.api.resources import ResourceManager
from repro.codes.registry import CODE_REGISTRY, build_code
from repro.smt.interface import check_formula


def _task_pair(key):
    """A correction and a detection task that are both well-defined for ``key``."""
    code = build_code(key)
    max_errors = None if code.distance is not None else 1
    return (
        CorrectionTask(code=key, max_errors=max_errors),
        DetectionTask(code=key),
    )


class TestCrossTaskSharing:
    @pytest.mark.parametrize("key", sorted(CODE_REGISTRY))
    def test_shared_context_matches_fresh_per_task(self, key):
        correction, detection = _task_pair(key)
        shared = Engine()
        # Both task kinds run on ONE context (one live solver) per code...
        first = shared.run(correction)
        second = shared.run(detection)
        assert shared.cache_info()["sessions"] == 1
        assert second.details["resources"]["contexts"] == 1
        # ... and must agree with engines that never share anything.
        assert first.verified == Engine().run(correction).verified, key
        assert second.verified == Engine().run(detection).verified, key

    @pytest.mark.parametrize("key", ["steane", "five-qubit", "surface-3"])
    def test_guard_leak_between_task_kinds(self, key):
        """Interleaved task kinds must not contaminate one another: re-running
        a task after the *other* kind ran (and learnt clauses) keeps its
        verdict, and an over-claimed correction still finds its
        counterexample on the shared session."""
        correction, detection = _task_pair(key)
        engine = Engine()
        baseline_correction = engine.run(correction).verified
        baseline_detection = engine.run(detection).verified
        assert engine.run(correction).verified == baseline_correction
        assert engine.run(detection).verified == baseline_detection
        overclaim = CorrectionTask(code=key, max_errors=4)
        bug = engine.run(overclaim)
        fresh_bug = Engine().run(overclaim)
        assert bug.verified == fresh_bug.verified
        if not bug.verified:
            assert bug.counterexample_qubits()
            # Selector guards never leak into extracted counterexamples.
            assert not any(name.startswith(("task:", "w:", "detection-base"))
                           for name in bug.counterexample)
        # The original tasks still decide correctly after the buggy traffic.
        assert engine.run(correction).verified == baseline_correction
        assert engine.run(detection).verified == baseline_detection

    def test_correction_and_detection_share_learnt_clauses(self):
        engine = Engine()
        correction, detection = _task_pair("steane")
        first = engine.run(correction)
        second = engine.run(detection)
        stats = second.session_stats()
        # Two checks on one session: the detection run sees the cumulative
        # counters of the shared solver, not a fresh one.
        assert stats["checks"] == 2
        assert stats["conflicts"] >= first.conflicts
        assert stats["context_misses"] == 2  # two formulas guarded once each
        third = engine.run(detection)
        assert third.session_stats()["context_hits"] == 1

    def test_program_tasks_keep_a_persistent_session(self):
        """Code-less tasks (the program-logic route) still reuse one live
        solver across runs, as they did before per-code contexts."""
        from repro.api import ProgramTask
        from repro.codes import steane_code
        from repro.verifier.programs import correction_triple

        scenario = correction_triple(steane_code(), error="Y", max_errors=1)
        task = ProgramTask(triple=scenario.triple,
                           decoder_condition=scenario.decoder_condition)
        engine = Engine()
        first = engine.run(task)
        second = engine.run(task)
        assert first.verified and second.verified
        assert second.session_stats()["checks"] == 2
        assert second.conflicts == 0

    def test_session_stats_prefers_per_session_learnt_counters(self):
        engine = Engine()
        engine.run(CorrectionTask(code="five-qubit"))
        result = engine.run(CorrectionTask(code="steane"))
        stats = result.session_stats()
        # Two contexts are live engine-wide, but the merged stats report the
        # learnt counters of THIS task's session, not the engine-wide sum.
        assert stats["contexts"] == 2
        assert stats["learnt_kept"] == result.details["session"]["learnt_kept"]
        assert result.details["resources"]["learnt_kept"] >= stats["learnt_kept"]

    def test_nondeterministic_tasks_bypass_the_context(self):
        from repro.api import ConstrainedTask

        engine = Engine()
        task = ConstrainedTask(code="surface-3", locality=True, error_model="Y")
        engine.run(task)
        assert engine.cache_info()["sessions"] == 0

    def test_context_lru_bound(self):
        engine = Engine(session_cache_size=1)
        engine.run(CorrectionTask(code="steane"))
        engine.run(CorrectionTask(code="five-qubit"))
        assert engine.cache_info()["sessions"] == 1


class TestBinarySearchDistance:
    @pytest.mark.parametrize("key,expected", [
        ("steane", 3), ("five-qubit", 3), ("surface-3", 3), ("shor", 3),
    ])
    def test_distance_matches_linear_probe_walk(self, key, expected):
        result = Engine().run(DistanceTask(code=key, max_trial=6))
        assert result.details["distance"] == expected
        assert result.details["strategy"] == "binary-search"

    def test_surface5_issues_fewer_checks_than_linear(self):
        result = Engine().run(DistanceTask(code="surface-5", max_trial=6))
        assert result.details["distance"] == 5
        # The linear walk needed 5 detection queries (trials 2..6); the
        # binary search needs 3 (bounds 3, 4, 5).
        assert len(result.details["trials"]) < 5
        assert result.details["witness"]

    def test_witness_is_minimum_weight(self):
        from repro.verifier.encodings import model_error_weight

        result = Engine().run(DistanceTask(code="steane", max_trial=6))
        assert model_error_weight(result.details["witness"]) == result.details["distance"]

    def test_distance_after_single_pauli_traffic_on_shared_session(self):
        """Regression: a prior single-Pauli task names e_i variables on the
        shared session; during a distance probe those are unconstrained and
        must neither inflate the witness weight (which sent the binary
        search into an infinite loop) nor appear in the witness."""
        engine = Engine()
        engine.run(CorrectionTask(code="steane", error_model="X", max_errors=3))
        result = engine.run(DistanceTask(code="steane", max_trial=5))
        assert result.details["distance"] == 3
        assert not any(name.startswith("e_") for name in result.details["witness"])

    def test_counterexamples_exclude_other_tasks_variables(self):
        """A counterexample on the shared session names only the failing
        task's own variables, not indicators of other guarded formulas."""
        engine = Engine()
        engine.run(DetectionTask(code="steane", trial_distance=3))
        bug = engine.run(CorrectionTask(code="steane", error_model="X", max_errors=3))
        assert not bug.verified
        # The "any"-model detection formula named ex_/ez_ variables; the
        # single-Pauli correction counterexample must not carry them.
        assert not any(name.startswith(("ex_", "ez_")) for name in bug.counterexample)
        assert any(name.startswith("e_") for name in bug.counterexample)

    def test_parallel_distance_uses_persistent_pool(self):
        engine = Engine()
        first = engine.run(DistanceTask(code="steane", max_trial=5),
                           backend=ParallelBackend(num_workers=2))
        assert first.details["distance"] == 3
        assert first.details["resources"]["pool_misses"] == 1
        second = engine.run(DistanceTask(code="steane", max_trial=5),
                            backend=ParallelBackend(num_workers=2))
        assert second.details["distance"] == 3
        assert second.details["resources"]["pool_misses"] == 1
        assert second.details["resources"]["pool_hits"] >= 1
        engine.close()


class TestPoolReuse:
    def test_repeated_parallel_task_hits_the_pool(self):
        engine = Engine(backend=ParallelBackend(num_workers=2))
        task = CorrectionTask(code="steane", error_model="Y")
        first = engine.run(task)
        second = engine.run(task)
        assert first.verified and second.verified
        stats = second.session_stats()
        assert stats["pools"] == 1
        assert stats["pool_misses"] == 1
        assert stats["pool_hits"] == 1
        engine.close()

    def test_sweep_creates_one_pool_per_distinct_formula(self):
        keys = ["steane", "five-qubit", "detection-422"]
        engine = Engine(backend=ParallelBackend(num_workers=2))
        results = engine.run_many(registry_sweep_tasks(keys))
        assert all(result.verified for result in results)
        stats = results[-1].session_stats()
        assert stats["pool_misses"] == len(keys)
        assert stats["pool_hits"] == 0
        # A second sweep over the same codes is all pool hits.
        again = engine.run_many(registry_sweep_tasks(keys))
        stats = again[-1].session_stats()
        assert stats["pool_misses"] == len(keys)
        assert stats["pool_hits"] == len(keys)
        engine.close()

    def test_pool_manager_lru_closes_evicted_sessions(self):
        manager = ResourceManager(max_pools=1)
        from repro.verifier.encodings import ErrorModel, precise_detection_formula

        first = manager.pools.split_session(
            precise_detection_formula(build_code("steane"), 3, ErrorModel("any")),
            num_workers=1,
        )
        second = manager.pools.split_session(
            precise_detection_formula(build_code("five-qubit"), 3, ErrorModel("any")),
            num_workers=1,
        )
        assert len(manager.pools) == 1
        assert first is not second
        manager.close()

    def test_engine_close_shuts_pools_down(self):
        engine = Engine(backend=ParallelBackend(num_workers=2))
        engine.run(CorrectionTask(code="steane", error_model="Y"))
        assert engine.resources.stats()["pools"] == 1
        engine.close()
        assert engine.resources.stats()["pools"] == 0


class TestWarmCache:
    def test_round_trip_skips_relearning(self, tmp_path):
        cache = str(tmp_path / "warm")
        cold_engine = Engine()
        cold_engine.resources.enable_warm_cache(cache)
        task = CorrectionTask(code="steane")
        cold = cold_engine.run(task)
        cold_engine.resources.save_warm()
        assert cold.conflicts > 0

        warm_engine = Engine()
        warm_engine.resources.enable_warm_cache(cache)
        warm = warm_engine.run(task)
        stats = warm.session_stats()
        assert stats["warm_hits"] == 1
        assert stats["warm_absorbed"] > 0
        # Everything the cold run learnt is back: deciding again is free.
        assert warm.conflicts == 0
        assert warm.verified == cold.verified

    def test_mismatched_fingerprint_misses(self, tmp_path):
        cache = str(tmp_path / "warm")
        engine = Engine()
        engine.resources.enable_warm_cache(cache)
        engine.run(CorrectionTask(code="steane"))
        engine.resources.save_warm()

        other = Engine()
        other.resources.enable_warm_cache(cache)
        result = other.run(CorrectionTask(code="five-qubit"))
        stats = result.session_stats()
        assert stats["warm_hits"] == 0
        assert stats["warm_misses"] == 1

    def test_session_cache_rejects_corrupt_payloads(self, tmp_path):
        cache = SessionCache(str(tmp_path))
        cache.store("abc", [[1, -2], [2, 3]])
        assert cache.load("abc") == [[1, -2], [2, 3]]
        # Fingerprint embedded in the payload must match the request.
        (tmp_path / "def.json").write_text('{"fingerprint": "zzz", "learnt": [[1]]}')
        assert cache.load("def") is None
        (tmp_path / "ghi.json").write_text("not json")
        assert cache.load("ghi") is None
        assert cache.load("missing") is None
        assert cache.hits == 1 and cache.misses == 3

    def test_distance_warm_start(self, tmp_path):
        cache = str(tmp_path / "warm")
        task = DistanceTask(code="surface-3", max_trial=5)
        cold_engine = Engine()
        cold_engine.resources.enable_warm_cache(cache)
        cold = cold_engine.run(task)
        cold_engine.resources.save_warm()

        warm_engine = Engine()
        warm_engine.resources.enable_warm_cache(cache)
        warm = warm_engine.run(task)
        assert warm.details["distance"] == cold.details["distance"]
        assert warm.conflicts <= cold.conflicts


class TestSharedSessionAgainstFreshFormulas:
    @pytest.mark.parametrize("key", sorted(CODE_REGISTRY))
    def test_context_verdicts_equal_monolithic_check(self, key):
        """The guarded shared encoding must agree with a plain one-shot
        check of the compiled formula, after both task kinds trafficked
        the session (the engine-level analogue of the smt-layer
        incremental-vs-fresh equivalence tests)."""
        correction, detection = _task_pair(key)
        engine = Engine()
        compiled_correction = engine.compile_task(correction)
        compiled_detection = engine.compile_task(detection)
        shared_correction = engine.run(correction)
        shared_detection = engine.run(detection)
        assert shared_correction.verified == check_formula(compiled_correction.formula).is_unsat
        assert shared_detection.verified == check_formula(compiled_detection.formula).is_unsat


class TestGuardGarbageCollection:
    def test_task_guard_lru_retires_stale_guards(self):
        from repro.api.resources import CodeContext
        from repro.codes.registry import build_code
        from repro.verifier.encodings import ErrorModel, precise_detection_formula

        code = build_code("five-qubit")
        context = CodeContext("five-qubit", max_task_guards=2)
        verdicts = {}
        for trial in (2, 3, 4):
            formula = precise_detection_formula(code, trial, error_model=ErrorModel("any"))
            view = context.task_view(("trial", trial), formula)
            verdicts[trial] = view.check().status
        assert len(context._task_guards) == 2
        assert context.retired == 1
        assert context.session.stats().get("erased_clauses", 0) >= 1
        # The evicted task re-enters under a fresh selector with the same
        # verdict; survivors keep theirs.
        for trial in (2, 3, 4):
            formula = precise_detection_formula(code, trial, error_model=ErrorModel("any"))
            view = context.task_view(("trial", trial), formula)
            assert view.check().status == verdicts[trial], trial

    def test_selector_names_never_reused_after_retirement(self):
        from repro.api.resources import CodeContext
        from repro.codes.registry import build_code
        from repro.verifier.encodings import ErrorModel, precise_detection_formula

        code = build_code("five-qubit")
        context = CodeContext("five-qubit")
        formula = precise_detection_formula(code, 2, error_model=ErrorModel("any"))
        first = context.task_view("t", formula)
        context.retire_task("t")
        second = context.task_view("t", formula)
        assert first.selectors != second.selectors
        assert second.check().status in ("sat", "unsat")

    def test_retire_unknown_task_is_a_noop(self):
        engine = Engine()
        assert engine.release_task(CorrectionTask(code="steane")) is False
        engine.run(CorrectionTask(code="steane"))
        assert engine.release_task(CorrectionTask(code="steane")) is True
        assert engine.release_task(CorrectionTask(code="steane")) is False


class TestPoolWorkerWarmCache:
    def test_pool_workers_absorb_and_contribute_learnt_clauses(self, tmp_path):
        directory = str(tmp_path / "warm")
        backend = ParallelBackend(num_workers=2)
        task = DistanceTask(code="surface-3")

        first_engine = Engine(backend=backend)
        first_engine.resources.enable_warm_cache(directory)
        first = first_engine.run(task)
        first_engine.resources.save_warm()
        first_engine.close()
        assert first.details["distance"] == 3
        import os

        assert os.listdir(directory), "pool workers wrote no warm entries"

        second_engine = Engine(backend=backend)
        second_engine.resources.enable_warm_cache(directory)
        second = second_engine.run(task)
        stats = second_engine.resources.stats()
        second_engine.close()
        assert second.details["distance"] == 3
        assert second.details["session"].get("warm_absorbed", 0) > 0
        assert stats["warm_absorbed"] > 0
        # Warm-started workers re-derive strictly less than they learnt.
        assert second.conflicts <= first.conflicts
