"""The clause store wired into the engine: warm starts, family transfer,
resumable distance walks and the reuse-aware sweep schedule.

The load-bearing property is the same one the warm cache pinned, extended
to durable state: nothing the store holds — fresh, stale, foreign or
actively corrupted — may ever change a verdict, a model or a reported
distance.  The store buys speed (fewer conflicts, fewer probes) and only
speed.
"""

import json
import sqlite3

import pytest

from repro.api import (
    CorrectionTask,
    DistanceTask,
    Engine,
    registry_sweep_tasks,
)
from repro.api.engine import _reuse_sort_key, _validate_checkpoint
from repro.api.events import DistanceProbe, JobCompleted, SolverStats, validate_stream
from repro.codes.registry import CODE_REGISTRY
from repro.store import ClauseStore
from repro.store.clause_store import _row_checksum


def _store_engine(directory):
    engine = Engine()
    engine.resources.enable_clause_store(str(directory))
    return engine


def _verdict(result):
    """The observable outcome of a task, excluding run-dependent counters."""
    details = result.details or {}
    return (result.subject, result.verified, details.get("distance"))


def _db_path(directory):
    return str(directory / "clauses.sqlite")


class TestStoreWarmStart:
    def test_round_trip_skips_relearning(self, tmp_path):
        task = CorrectionTask(code="steane")
        cold_engine = _store_engine(tmp_path)
        cold = cold_engine.run(task)
        cold_engine.resources.save_warm()
        assert cold.conflicts > 0

        warm_engine = _store_engine(tmp_path)
        warm = warm_engine.run(task)
        assert warm.conflicts == 0
        assert warm.verified == cold.verified
        store = warm_engine.resources.clause_store
        assert store.hits == 1

    def test_family_transfer_absorbs_verified_clauses(self, tmp_path):
        donor = _store_engine(tmp_path)
        donor.run(CorrectionTask(code="surface-3"))
        donor.resources.save_warm()

        sibling = _store_engine(tmp_path)
        result = sibling.run(CorrectionTask(code="surface-5"))
        assert result.verified
        stats = sibling.resources.stats()
        # The sibling's exact fingerprint differs, so anything that arrived
        # came through the family index — and was re-proved on the way in.
        assert stats["store_probes"] > 0
        assert stats["store_absorbed"] > 0

    def test_store_and_json_cache_layouts_coexist(self, tmp_path):
        # enable_clause_store and the legacy enable_warm_cache share the
        # plumbing; a store directory must not be mistaken for JSON files.
        engine = _store_engine(tmp_path)
        engine.run(CorrectionTask(code="steane"))
        engine.resources.save_warm()
        assert (tmp_path / "clauses.sqlite").exists()
        assert not list(tmp_path.glob("*.json"))


class TestStoreNeverChangesVerdicts:
    """The registry-wide mutation property test: corrupt the store every
    way we can think of, then re-run the whole sweep and demand verdict
    equality with a cold engine."""

    def test_corrupted_store_sweep_equals_cold(self, tmp_path):
        tasks = registry_sweep_tasks()
        cold = [_verdict(result) for result in Engine().run_many(tasks)]

        populate = _store_engine(tmp_path)
        populate.run_many(tasks)
        populate.resources.save_warm()

        # Mutation 1: flip the leading literal of every stored clause
        # behind the checksums' back (bit-rot / torn writes).
        with sqlite3.connect(_db_path(tmp_path)) as conn:
            rows = conn.execute("SELECT fingerprint, clause FROM clauses").fetchall()
            assert rows, "populate pass stored nothing"
            half = rows[: max(1, len(rows) // 2)]
            for fingerprint, text in half:
                literals = json.loads(text)
                literals[0] = -literals[0]
                conn.execute(
                    "UPDATE clauses SET clause = ? WHERE fingerprint = ? AND clause = ?",
                    (json.dumps(literals, separators=(",", ":")), fingerprint, text),
                )
            # Mutation 2: re-key surviving rows under a foreign fingerprint
            # (a clause learnt against a different CNF must never load).
            (donor_fp,) = conn.execute(
                "SELECT fingerprint FROM clauses LIMIT 1"
            ).fetchone()
            conn.execute(
                "INSERT OR IGNORE INTO clauses "
                "SELECT 'foreign-fp', clause, checksum, lbd, size, created, last_used, hits "
                "FROM clauses WHERE fingerprint = ?",
                (donor_fp,),
            )
            # Mutation 3: poison every family with a *checksum-valid* bogus
            # projection; these reach the entailment re-proof and must die
            # there instead.
            families = [
                row[0]
                for row in conn.execute(
                    "SELECT DISTINCT family FROM named_clauses"
                ).fetchall()
            ]
            for family in families:
                text = json.dumps([["e0", True]], separators=(",", ":"))
                conn.execute(
                    "INSERT OR REPLACE INTO named_clauses VALUES (?, ?, ?, ?, ?, ?)",
                    (family, "poison-fp", text, _row_checksum(family, "poison-fp", text), 1, 0.0),
                )

        poisoned = _store_engine(tmp_path)
        replay = [_verdict(result) for result in poisoned.run_many(tasks)]
        assert replay == cold

    def test_bogus_family_candidates_absorb_nothing(self, tmp_path):
        cold = Engine().run(CorrectionTask(code="steane"))

        store = ClauseStore(str(tmp_path))
        family = "steane"  # single-member family: every candidate is foreign
        for index in range(8):
            # Unit claims like "error indicator eN is set" are satisfiable
            # to refute — none of them is entailed by the encoding.
            store.store_meta(
                "poison-fp",
                [],
                family=family,
                named=[(((f"e{index}", True),), 1)],
            )
        store.close()

        engine = _store_engine(tmp_path)
        result = engine.run(CorrectionTask(code="steane"))
        stats = engine.resources.stats()
        assert _verdict(result) == _verdict(cold)
        assert stats.get("store_absorbed", 0) == 0


class TestDistanceResume:
    def _probe_count(self, result):
        return len(result.details["trials"])

    def _interrupted_store(self, tmp_path, task, cancel_after=2, attempts=8):
        """A store directory holding exactly one mid-walk checkpoint.

        Cancellation is cooperative, so a fast walk can finish (and delete
        its checkpoint) before the cancel lands; retry on a fresh store —
        cancelling ever earlier — until the checkpoint survives.
        """
        for attempt in range(attempts):
            directory = tmp_path / f"attempt-{attempt}"
            engine = _store_engine(directory)
            job = engine.submit(task)
            seen = 0
            cut = max(1, cancel_after - attempt)
            for event in job.events():
                if isinstance(event, DistanceProbe):
                    seen += 1
                    if seen == cut:
                        job.cancel()
            engine.close()
            with sqlite3.connect(_db_path(directory)) as conn:
                (rows,) = conn.execute(
                    "SELECT COUNT(*) FROM checkpoints"
                ).fetchone()
            if rows == 1:
                return directory
        pytest.fail("walk finished before any cancel landed")

    def test_cancelled_walk_resumes_with_fewer_probes(self, tmp_path):
        task = DistanceTask(code="surface-5")
        cold = Engine().run(task)
        cold_probes = self._probe_count(cold)
        assert cold_probes >= 3  # the walk must be long enough to interrupt

        directory = self._interrupted_store(tmp_path, task)

        resumed_engine = _store_engine(directory)
        resumed = resumed_engine.run(task)
        assert resumed.details["distance"] == cold.details["distance"]
        assert self._probe_count(resumed) < cold_probes
        assert resumed.details["resumed_from"]["probes"] >= 1
        assert resumed.details["resumed_from"]["lo"] >= 1

        # A finished walk deletes its checkpoint: the next run is cold.
        with sqlite3.connect(_db_path(directory)) as conn:
            (checkpoints,) = conn.execute("SELECT COUNT(*) FROM checkpoints").fetchone()
        assert checkpoints == 0
        again = resumed_engine.run(task)
        assert "resumed_from" not in (again.details or {})

    def test_resumed_stream_spells_out_the_resume(self, tmp_path):
        task = DistanceTask(code="surface-5")
        directory = self._interrupted_store(tmp_path, task, cancel_after=1)

        resumed_engine = _store_engine(directory)
        job = resumed_engine.submit(task)
        lines = [event.to_json() for event in job.events()]
        probes = [json.loads(line) for line in lines if '"DistanceProbe"' in line]
        completed = [json.loads(line) for line in lines if '"JobCompleted"' in line]
        assert probes and probes[0].get("resumed_from")
        assert all("resumed_from" not in probe for probe in probes[1:])
        assert completed and completed[0].get("resumed_from")
        count, _, errors = validate_stream(lines)
        assert count == len(lines) and not errors

    def test_tampered_checkpoint_runs_cold(self, tmp_path):
        task = DistanceTask(code="surface-3")
        reference = Engine().run(task)

        directory = self._interrupted_store(tmp_path, task, cancel_after=1)
        with sqlite3.connect(_db_path(directory)) as conn:
            conn.execute("UPDATE checkpoints SET payload = '{\"lo\": 999}'")

        resumed = _store_engine(directory).run(task)
        assert "resumed_from" not in (resumed.details or {})
        assert resumed.details["distance"] == reference.details["distance"]

    def test_out_of_bounds_checkpoint_is_rejected(self, tmp_path):
        task = DistanceTask(code="surface-3")
        reference = Engine().run(task)

        directory = self._interrupted_store(tmp_path, task, cancel_after=1)
        with sqlite3.connect(_db_path(directory)) as conn:
            (key,) = conn.execute("SELECT key FROM checkpoints").fetchone()
        # A checksum-valid payload whose bracket lies outside the walk's
        # bounds: _validate_checkpoint must throw it away wholesale.
        store = ClauseStore(str(directory))
        store.checkpoint_save(
            key,
            {
                "version": 1,
                "strategy": "galloping",
                "limit": 10**6,
                "lo": 999,
                "hi": 999,
                "distance": 999,
                "probes": 1,
                "galloping": True,
                "gallop_bound": 1,
            },
        )
        store.close()

        resumed = _store_engine(directory).run(task)
        assert "resumed_from" not in (resumed.details or {})
        assert resumed.details["distance"] == reference.details["distance"]

    def test_validate_checkpoint_rejects_malformed_payloads(self):
        good = {
            "version": 1,
            "limit": 9,
            "lo": 3,
            "hi": 7,
            "distance": 9,
            "probes": 2,
            "galloping": False,
            "gallop_bound": 1,
            "witness": None,
        }
        assert _validate_checkpoint(dict(good), 9) == good
        assert _validate_checkpoint(None, 9) is None
        assert _validate_checkpoint({**good, "version": 2}, 9) is None
        assert _validate_checkpoint({**good, "limit": 8}, 9) is None
        assert _validate_checkpoint({**good, "lo": 0}, 9) is None
        assert _validate_checkpoint({**good, "hi": 9}, 9) is None
        assert _validate_checkpoint({**good, "probes": True}, 9) is None
        assert _validate_checkpoint({**good, "witness": [1]}, 9) is None
        assert _validate_checkpoint({**good, "witness": {"e0": 1}}, 9) is None


class TestReuseSchedule:
    def test_results_come_back_in_input_order(self, tmp_path):
        keys = ["surface-5", "five-qubit", "hgp-hamming", "surface-3", "hgp-repetition"]
        keys = [key for key in keys if key in CODE_REGISTRY]
        tasks = [CorrectionTask(code=key) for key in keys]

        fifo = Engine().run_many(tasks, schedule="fifo")
        engine = _store_engine(tmp_path)
        reuse = engine.run_many(tasks)  # store attached => defaults to reuse
        assert [_verdict(r) for r in reuse] == [_verdict(r) for r in fifo]

    def test_store_less_engine_defaults_to_fifo(self):
        # The default execution order without a store is the input order —
        # pinned so attaching the scheduler never surprises old callers.
        engine = Engine()
        tasks = [CorrectionTask(code="surface-5"), CorrectionTask(code="surface-3")]
        results = engine.run_many(tasks)
        assert [result.subject for result in results] == ["surface-5x5", "surface-3x3"]

    def test_sort_key_groups_families_and_ranks(self):
        tasks = [
            DistanceTask(code="surface-5"),
            CorrectionTask(code="hgp-hamming"),
            CorrectionTask(code="surface-5"),
            CorrectionTask(code="surface-3"),
            CorrectionTask(code="hgp-repetition"),
        ]
        ordered = sorted(tasks, key=_reuse_sort_key)
        codes = [task.code for task in ordered]
        # Families group together; within one, smaller ranks run first
        # (they seed the store for their bigger siblings), and a code's
        # cheap kinds precede its distance walk.
        assert codes.index("hgp-repetition") < codes.index("hgp-hamming")
        assert codes.index("surface-3") < codes.index("surface-5")
        surface5 = [index for index, task in enumerate(ordered) if task.code == "surface-5"]
        assert isinstance(ordered[surface5[0]], CorrectionTask)
        assert isinstance(ordered[surface5[1]], DistanceTask)

    def test_pool_workers_share_the_store(self, tmp_path):
        tasks = [CorrectionTask(code="steane"), CorrectionTask(code="five-qubit")]
        engine = _store_engine(tmp_path)
        first = engine.run_many(tasks, processes=2)
        assert all(result.verified for result in first)
        # The workers merged their learnt clauses into the shared sqlite
        # file; a later in-process engine warm-starts from them.
        warm = _store_engine(tmp_path).run(CorrectionTask(code="steane"))
        assert warm.conflicts == 0 and warm.verified


class TestEvictionCounters:
    def _steane_cnf(self):
        from repro.codes import steane_code
        from repro.smt.encoder import FormulaEncoder
        from repro.verifier.encodings import accurate_correction_formula

        encoder = FormulaEncoder()
        encoder.assert_formula(accurate_correction_formula(steane_code(), max_errors=2))
        return encoder.cnf

    def test_solver_result_reports_the_eviction_delta(self):
        from repro.smt.solver import SATSolver

        solver = SATSolver(self._steane_cnf(), max_learnt=5)
        first = solver.solve()
        assert first.learnt_evicted > 0
        assert first.learnt_evicted == solver.learnt_deleted
        # A second call reports only its own delta, not the lifetime total.
        second = solver.solve()
        assert second.learnt_evicted == solver.learnt_deleted - first.learnt_evicted

    def test_session_stats_surface_the_counter(self):
        from repro.codes import steane_code
        from repro.smt.interface import SolveSession
        from repro.verifier.encodings import accurate_correction_formula

        session = SolveSession(accurate_correction_formula(steane_code(), max_errors=2))
        check = session.check()
        assert "learnt_evicted" not in session.stats()  # zero is omitted
        session._solver.max_learnt = 5
        session._solver._reduce_learnt()
        assert session.stats()["learnt_evicted"] > 0
        assert check.learnt_evicted == 0


class TestEventFields:
    def test_solver_stats_optional_fields_omit_zero(self):
        base = dict(job_id="job-1", conflicts=1, decisions=1, propagations=1,
                    num_variables=9, num_clauses=9)
        quiet = SolverStats(**base).to_dict()
        assert "store_absorbed" not in quiet and "learnt_evicted" not in quiet
        loud = SolverStats(**base, store_absorbed=3, learnt_evicted=7).to_dict()
        assert loud["store_absorbed"] == 3 and loud["learnt_evicted"] == 7

    def test_resumed_from_omitted_when_none(self):
        base = dict(job_id="job-1", bound=3, window=(1, 7), sat=False,
                    conflicts=1, decisions=1, elapsed_seconds=0.1)
        assert "resumed_from" not in DistanceProbe(**base).to_dict()
        resumed = DistanceProbe(**base, resumed_from={"lo": 3, "hi": 7, "probes": 2})
        assert resumed.to_dict()["resumed_from"] == {"lo": 3, "hi": 7, "probes": 2}

    def test_job_completed_round_trips_resumed_from(self):
        completed = JobCompleted(job_id="job-1", verified=True, elapsed_seconds=0.1,
                                 resumed_from={"lo": 3, "hi": 7, "probes": 2})
        payload = completed.to_dict()
        assert payload["resumed_from"]["probes"] == 2
        bare = JobCompleted(job_id="job-1", verified=True, elapsed_seconds=0.1)
        assert "resumed_from" not in bare.to_dict()
