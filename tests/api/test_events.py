"""The typed event schema: serialization, validation, stream contracts."""

import json

import pytest

from repro.api.events import (
    EVENT_SCHEMAS,
    EVENT_TYPES,
    SCHEMA_VERSION,
    DistanceProbe,
    JobCancelled,
    JobCompleted,
    JobFailed,
    JobSubmitted,
    SolverStats,
    SubtaskStarted,
    TaskCompiled,
    deterministic_view,
    event_from_dict,
    validate_event,
    validate_stream,
)


def _sample(cls):
    event = cls()
    event.job_id = "job-1"
    event.seq = 0
    return event


class TestSerialization:
    @pytest.mark.parametrize("name", sorted(EVENT_TYPES))
    def test_every_type_serializes_with_version_and_identity(self, name):
        payload = _sample(EVENT_TYPES[name]).to_dict()
        assert payload["event"] == name
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["job_id"] == "job-1"
        assert payload["seq"] == 0
        # One NDJSON line, parseable back to the same dict.
        assert json.loads(_sample(EVENT_TYPES[name]).to_json()) == payload

    @pytest.mark.parametrize("name", sorted(EVENT_TYPES))
    def test_round_trip_through_dict(self, name):
        original = _sample(EVENT_TYPES[name])
        clone = event_from_dict(original.to_dict())
        assert type(clone) is type(original)
        assert clone.to_dict() == original.to_dict()

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"event": "Nope"})

    def test_terminal_flags(self):
        terminal = {name for name, cls in EVENT_TYPES.items() if cls.TERMINAL}
        assert terminal == {"JobCompleted", "JobCancelled", "JobFailed"}

    def test_schemas_cover_every_type_and_field(self):
        assert set(EVENT_SCHEMAS) == set(EVENT_TYPES)
        base = {"event", "schema_version", "job_id", "seq"}
        for name, cls in EVENT_TYPES.items():
            payload = _sample(cls).to_dict()
            declared = set(EVENT_SCHEMAS[name]) | base
            # Optional members (e.g. SolverStats' only-when-nonzero hot-path
            # counters) may be absent from a default payload, but nothing
            # undeclared may ever appear, and every required field must.
            assert set(payload) <= declared, name
            required = {
                field for field, (_, is_required) in EVENT_SCHEMAS[name].items()
                if is_required
            } | base
            assert required <= set(payload), name

    def test_solver_stats_hotpath_counters_only_when_nonzero(self):
        quiet = _sample(SolverStats)
        assert "blocker_hits" not in quiet.to_dict()
        assert "heap_discards" not in quiet.to_dict()
        busy = _sample(SolverStats)
        busy.blocker_hits = 7
        busy.heap_discards = 3
        payload = busy.to_dict()
        assert payload["blocker_hits"] == 7
        assert payload["heap_discards"] == 3
        assert validate_event(payload) == []
        clone = event_from_dict(payload)
        assert clone.blocker_hits == 7 and clone.heap_discards == 3


class TestValidation:
    @pytest.mark.parametrize("name", sorted(EVENT_TYPES))
    def test_emitted_events_validate(self, name):
        assert validate_event(_sample(EVENT_TYPES[name]).to_dict()) == []

    def test_rejects_wrong_version(self):
        payload = _sample(JobCompleted).to_dict()
        payload["schema_version"] = "0.1"
        assert any("schema_version" in error for error in validate_event(payload))

    def test_rejects_missing_field(self):
        payload = _sample(JobCancelled).to_dict()
        del payload["reason"]
        assert any("missing field 'reason'" in error for error in validate_event(payload))

    def test_rejects_wrong_type(self):
        payload = _sample(SolverStats).to_dict()
        payload["conflicts"] = "many"
        assert any("conflicts" in error for error in validate_event(payload))

    def test_rejects_bool_masquerading_as_int(self):
        payload = _sample(SubtaskStarted).to_dict()
        payload["index"] = True
        assert any("index" in error for error in validate_event(payload))

    def test_rejects_unexpected_field(self):
        payload = _sample(TaskCompiled).to_dict()
        payload["surprise"] = 1
        assert any("unexpected field" in error for error in validate_event(payload))

    def test_rejects_missing_identity(self):
        payload = _sample(JobSubmitted).to_dict()
        payload["job_id"] = ""
        payload["seq"] = -1
        errors = validate_event(payload)
        assert any("job_id" in error for error in errors)
        assert any("seq" in error for error in errors)


def _lines(events):
    return [event.to_json() for event in events]


def _job_stream(job_id="job-1"):
    events = [
        JobSubmitted(task_kind="find-distance", subject="steane"),
        TaskCompiled(task_kind="find-distance", subject="steane"),
        SubtaskStarted(index=0, description="probe"),
        DistanceProbe(bound=1, window=[1, 3], sat=False),
        JobCompleted(verified=True),
    ]
    for seq, event in enumerate(events):
        event.job_id = job_id
        event.seq = seq
    return events


class TestStreamValidation:
    def test_valid_stream(self):
        count, by_type, errors = validate_stream(_lines(_job_stream()))
        assert errors == []
        assert count == 5
        assert by_type["JobCompleted"] == 1

    def test_interleaved_jobs_validate_independently(self):
        first = _job_stream("job-1")
        second = _job_stream("job-2")
        interleaved = [x for pair in zip(first, second) for x in pair]
        _, _, errors = validate_stream(_lines(interleaved))
        assert errors == []

    def test_seq_gap_detected(self):
        events = _job_stream()
        events[2].seq = 7
        _, _, errors = validate_stream(_lines(events))
        assert any("seq" in error for error in errors)

    def test_missing_terminal_detected(self):
        _, _, errors = validate_stream(_lines(_job_stream()[:-1]))
        assert any("without a terminal event" in error for error in errors)

    def test_event_after_terminal_detected(self):
        events = _job_stream()
        extra = SolverStats()
        extra.job_id, extra.seq = "job-1", 5
        events.append(extra)
        _, _, errors = validate_stream(_lines(events))
        assert any("after its terminal event" in error for error in errors)

    def test_garbage_line_detected(self):
        _, _, errors = validate_stream(["not json"])
        assert any("not valid JSON" in error for error in errors)

    def test_failed_job_stream_is_valid(self):
        events = [JobSubmitted(), JobFailed(error="ValueError: boom")]
        for seq, event in enumerate(events):
            event.job_id, event.seq = "job-9", seq
        _, _, errors = validate_stream(_lines(events))
        assert errors == []


class TestDeterministicView:
    def test_strips_only_timing_fields(self):
        event = TaskCompiled(task_kind="k", subject="s", cached=True, compile_seconds=1.5)
        event.job_id, event.seq = "job-1", 1
        view = deterministic_view(event.to_dict())
        assert "compile_seconds" not in view
        assert view["cached"] is True and view["seq"] == 1
