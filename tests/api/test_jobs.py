"""The job lifecycle: submit → stream/await → result | cancel.

The acceptance-critical properties live here: a ``DistanceTask`` job can be
cancelled mid-probe and the shared per-code session stays reusable (the next
run returns the correct distance, equal to a fresh engine's), every stream
ends in exactly one terminal event, and event streams are deterministic
across fresh engines once wall-clock fields are stripped.
"""

import asyncio
import time

import pytest

from repro.api import (
    AsyncEngine,
    CorrectionTask,
    DetectionTask,
    DistanceProbe,
    DistanceTask,
    Engine,
    Job,
    JobCancelledError,
    JobExecutor,
    JobStatus,
    ParallelBackend,
)
from repro.api.events import EVENT_TYPES, deterministic_view
from repro.smt.solver import SolveControl, SolverInterrupted


def _event_names(job):
    return [type(event).__name__ for event in job.events()]


class TestLifecycle:
    def test_submit_runs_and_completes(self):
        engine = Engine()
        job = engine.submit(CorrectionTask(code="steane"))
        result = job.result(timeout=60)
        assert result.verified
        assert job.status is JobStatus.SUCCEEDED
        engine.close()

    def test_result_matches_blocking_run(self):
        task = DetectionTask(code="five-qubit")
        submitted = Engine().submit(task).result(timeout=60)
        blocking = Engine().run(task)
        assert submitted.verified == blocking.verified
        assert submitted.conflicts == blocking.conflicts
        assert submitted.to_dict().keys() == blocking.to_dict().keys()

    def test_stream_shape_and_single_terminal(self):
        engine = Engine()
        job = engine.submit(DistanceTask(code="steane", max_trial=5))
        names = _event_names(job)
        assert names[0] == "JobSubmitted"
        assert names[1] == "TaskCompiled"
        assert "DistanceProbe" in names
        assert names[-1] == "JobCompleted"
        terminals = [n for n in names if EVENT_TYPES[n].TERMINAL]
        assert terminals == ["JobCompleted"]
        # Sequence numbers are stamped contiguously from 0.
        seqs = [event.seq for event in job.events()]
        assert seqs == list(range(len(seqs)))
        engine.close()

    def test_replay_after_completion(self):
        engine = Engine()
        job = engine.submit(CorrectionTask(code="five-qubit"))
        job.wait(60)
        # Two late subscribers both get the identical full stream.
        assert _event_names(job) == _event_names(job)
        engine.close()

    def test_broken_subscriber_does_not_kill_the_dispatcher(self):
        engine = Engine()
        job = engine.submit(CorrectionTask(code="steane"))
        seen = []

        def broken(event):
            raise RuntimeError("consumer gone")

        job.subscribe(broken)
        job.subscribe(seen.append)
        assert job.result(timeout=60).verified
        assert type(seen[-1]).__name__ == "JobCompleted"
        # The dispatcher survived and runs the next job.
        assert engine.submit(DetectionTask(code="five-qubit")).result(timeout=60).verified
        engine.close()

    def test_concurrent_submits_get_unique_ids(self):
        import threading

        engine = Engine()
        jobs = []
        lock = threading.Lock()

        def submit_some():
            for _ in range(5):
                job = engine.submit(CorrectionTask(code="five-qubit"))
                with lock:
                    jobs.append(job)

        threads = [threading.Thread(target=submit_some) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({job.id for job in jobs}) == len(jobs) == 20
        for job in jobs:
            assert job.result(timeout=120).verified
        engine.close()

    def test_failed_job(self):
        engine = Engine()
        job = engine.submit(CorrectionTask(code="steane", max_errors=None))
        job.result(timeout=60)
        bad = engine.submit(DetectionTask(code="steane", trial_distance=None),
                            backend="no-such-backend")
        with pytest.raises(ValueError):
            bad.result(timeout=60)
        assert bad.status is JobStatus.FAILED
        assert _event_names(bad)[-1] == "JobFailed"
        engine.close()

    def test_backend_override_by_name(self):
        engine = Engine()
        job = engine.submit(CorrectionTask(code="five-qubit"), backend="serial")
        assert job.result(timeout=60).backend == "serial"
        engine.close()


class TestPriorities:
    def test_higher_priority_runs_first(self):
        engine = Engine()
        executor = JobExecutor(engine, autostart=False)
        order = []
        jobs = []
        for name, priority in [("low", 0), ("high", 5), ("mid", 1)]:
            job = Job(f"job-{name}", CorrectionTask(code="five-qubit"), priority=priority)
            job.add_done_callback(lambda finished: order.append(finished.id))
            jobs.append(executor.submit(job))
        executor.start()
        for job in jobs:
            assert job.wait(60)
        assert order == ["job-high", "job-mid", "job-low"]
        executor.shutdown()
        engine.close()

    def test_equal_priority_is_fifo(self):
        engine = Engine()
        executor = JobExecutor(engine, autostart=False)
        order = []
        jobs = []
        for index in range(3):
            job = Job(f"job-{index}", CorrectionTask(code="five-qubit"))
            job.add_done_callback(lambda finished: order.append(finished.id))
            jobs.append(executor.submit(job))
        executor.start()
        for job in jobs:
            assert job.wait(60)
        assert order == ["job-0", "job-1", "job-2"]
        executor.shutdown()
        engine.close()


class TestCancellation:
    def test_cancel_before_run_never_executes(self):
        engine = Engine()
        executor = JobExecutor(engine, autostart=False)
        job = executor.submit(Job("job-x", CorrectionTask(code="steane")))
        job.cancel()
        executor.start()
        with pytest.raises(JobCancelledError) as excinfo:
            job.result(timeout=60)
        assert excinfo.value.reason == "cancelled"
        assert _event_names(job) == ["JobSubmitted", "JobCancelled"]
        executor.shutdown()
        engine.close()

    def test_cancel_mid_probe_leaves_shared_session_reusable(self):
        """The acceptance scenario: cancel a surface-5 DistanceTask mid-walk;
        the same engine then discovers the correct distance on the same
        CodeContext, equal to a fresh engine's run."""
        task = DistanceTask(code="surface-5", max_trial=6)
        engine = Engine()
        job = engine.submit(task)

        def cancel_on_first_probe(event):
            if isinstance(event, DistanceProbe):
                job.cancel()

        job.subscribe(cancel_on_first_probe)
        with pytest.raises(JobCancelledError):
            job.result(timeout=300)
        assert job.status is JobStatus.CANCELLED
        names = _event_names(job)
        assert [n for n in names if EVENT_TYPES[n].TERMINAL] == ["JobCancelled"]
        # The walk was genuinely interrupted: it never reached the full
        # probe schedule a completed job emits.
        resumed = engine.run(task)
        fresh = Engine().run(task)
        assert resumed.details["distance"] == fresh.details["distance"] == 5
        assert resumed.verified and fresh.verified
        engine.close()

    def test_expired_deadline_cancels_before_running(self):
        engine = Engine()
        job = engine.submit(CorrectionTask(code="steane"), deadline=0.0)
        with pytest.raises(JobCancelledError) as excinfo:
            job.result(timeout=60)
        assert excinfo.value.reason == "deadline"
        assert _event_names(job) == ["JobSubmitted", "JobCancelled"]
        engine.close()

    def test_cancelled_correction_job_releases_its_guard(self):
        from repro.api.events import SubtaskStarted

        task = CorrectionTask(code="surface-5")
        engine = Engine()
        job = engine.submit(task)

        def cancel_at_solve_start(event):
            # Fires after the task's guard was asserted on the shared
            # context but before (or just as) the solve begins, so the
            # cancellation exercises the release path deterministically.
            if isinstance(event, SubtaskStarted):
                job.cancel()

        job.subscribe(cancel_at_solve_start)
        with pytest.raises(JobCancelledError) as excinfo:
            job.result(timeout=120)
        assert excinfo.value.reason == "cancelled"
        context = engine.resources.context_for("surface-5")
        assert len(context._task_guards) == 0
        assert context.retired == 1
        # Re-running the task after release re-asserts and still verifies,
        # and the guard-GC counters surface through the resource stats.
        rerun = engine.run(task)
        assert rerun.verified
        assert len(context._task_guards) == 1
        assert rerun.details["resources"]["retired_guards"] == 1
        engine.close()

    def test_deadline_mid_solve_cancels_and_session_survives(self):
        engine = Engine()
        # Tight but non-zero deadline: the job starts, the control fires
        # inside the solver, and the walk stops within one slice.
        job = engine.submit(DistanceTask(code="surface-5"), deadline=0.01)
        with pytest.raises(JobCancelledError) as excinfo:
            job.result(timeout=300)
        assert excinfo.value.reason == "deadline"
        result = engine.run(DistanceTask(code="surface-5", max_trial=6))
        assert result.details["distance"] == 5
        engine.close()

    def test_shutdown_cancels_queued_jobs(self):
        engine = Engine()
        executor = JobExecutor(engine, autostart=False)
        jobs = [executor.submit(Job(f"job-{i}", CorrectionTask(code="steane")))
                for i in range(2)]
        executor.shutdown()
        for job in jobs:
            assert job.status is JobStatus.CANCELLED
            assert job.cancel_reason == "shutdown"
        engine.close()

    def test_submit_after_shutdown_raises_without_starting_a_stream(self):
        engine = Engine()
        executor = JobExecutor(engine, autostart=False)
        executor.shutdown()
        job = Job("job-late", CorrectionTask(code="steane"))
        with pytest.raises(RuntimeError):
            executor.submit(job)
        # No JobSubmitted was emitted, so no consumer can be left waiting
        # on a stream that will never terminate.
        assert job._events == []
        engine.close()


class TestPoolInterruption:
    def test_expired_control_interrupts_pool_and_pool_survives(self):
        from repro.smt.parallel import IncrementalSplitSession

        engine = Engine()
        compiled = engine.compile_task(CorrectionTask(code="steane"))
        session = IncrementalSplitSession(
            compiled.formula,
            split_variables=list(compiled.split_variables),
            heuristic_weight=compiled.split_weight,
            threshold=compiled.split_threshold,
            num_workers=2,
        )
        try:
            # The conflict budget is enforced inside the workers.  This must
            # run FIRST, against the fresh pool: once the worker sessions
            # have accumulated learnt clauses from a completed check, later
            # subtasks can be refuted with zero conflicts and a
            # conflict_budget=0 control would (legitimately) never fire —
            # which made this assertion flaky when it ran after the others.
            tight = SolveControl(conflict_budget=0, check_interval=1)
            with pytest.raises(SolverInterrupted) as budget_info:
                session.check(control=tight)
            assert budget_info.value.reason == "budget"
            expired = SolveControl(deadline=time.monotonic() - 1.0)
            with pytest.raises(SolverInterrupted) as excinfo:
                session.check(control=expired)
            # The parent control's verdict wins over the worker-relayed
            # cancel event, so the reason names the true cause.
            assert excinfo.value.reason == "deadline"
            # The pool (and every worker's live session) survived both
            # interruptions and decides the formula correctly afterwards.
            assert session.check().is_unsat
            assert session.check().is_unsat
        finally:
            session.close()
        engine.close()


class TestDeterminism:
    @pytest.mark.parametrize("task", [
        DetectionTask(code="steane"),
        DistanceTask(code="steane", max_trial=5),
        DistanceTask(code="steane", max_trial=16, strategy="galloping"),
    ])
    def test_event_streams_identical_across_fresh_engines(self, task):
        def stream(engine):
            job = engine.submit(task)
            job.wait(120)
            return [deterministic_view(event.to_dict()) for event in job.events()]

        first = stream(Engine())
        second = stream(Engine())
        assert first == second


class TestAsyncFacade:
    def test_arun_matches_blocking_run(self):
        async def main():
            async with AsyncEngine() as engine:
                return await engine.arun(CorrectionTask(code="steane"))

        result = asyncio.run(main())
        assert result.verified
        assert result.verified == Engine().run(CorrectionTask(code="steane")).verified

    def test_async_event_stream_and_multiplexing(self):
        async def main():
            async with AsyncEngine() as engine:
                jobs = [
                    engine.submit(DetectionTask(code="five-qubit")),
                    engine.submit(CorrectionTask(code="steane")),
                ]
                streams = []
                for job in jobs:
                    names = []
                    async for event in job.events():
                        names.append(type(event).__name__)
                    streams.append(names)
                results = await asyncio.gather(*(job.result() for job in jobs))
                return streams, results

        streams, results = asyncio.run(main())
        for names in streams:
            assert names[0] == "JobSubmitted"
            assert names[-1] == "JobCompleted"
        assert all(result.verified for result in results)

    def test_async_cancellation(self):
        async def main():
            async with AsyncEngine() as engine:
                job = engine.submit(DistanceTask(code="surface-5", max_trial=6))
                job.cancel()
                with pytest.raises(JobCancelledError):
                    await job.result()
                return job.status

        assert asyncio.run(main()) is JobStatus.CANCELLED

    def test_arun_many_preserves_order(self):
        async def main():
            async with AsyncEngine() as engine:
                return await engine.arun_many(
                    [CorrectionTask(code="steane"), DetectionTask(code="five-qubit")]
                )

        results = asyncio.run(main())
        assert [result.task for result in results] == [
            "accurate-correction", "precise-detection",
        ]


class TestRequestCancel:
    """The DELETE-semantics primitive: request_cancel's stable yes/no."""

    def test_live_job_accepts_and_is_idempotent(self):
        job = Job("job-rc1", CorrectionTask(code="steane"))
        assert job.request_cancel() is True
        assert job.request_cancel() is True  # repeat while live: still yes
        assert job.cancel_requested

    def test_terminal_job_refuses(self):
        engine = Engine()
        job = engine.submit(CorrectionTask(code="steane"))
        job.result(timeout=60)
        assert job.request_cancel() is False
        assert job.request_cancel() is False  # double-cancel stays a no-op
        assert job.status is JobStatus.SUCCEEDED  # and never flips the state
        engine.close()

    def test_cancelled_job_refuses_further_requests(self):
        job = Job("job-rc2", CorrectionTask(code="steane"))
        assert job.request_cancel() is True
        job._finish_cancelled("cancelled")
        assert job.request_cancel() is False
        assert job.status is JobStatus.CANCELLED
        assert job.cancel_reason == "cancelled"

    def test_shutdown_reason_propagates_to_terminal_event(self):
        engine = Engine()
        executor = JobExecutor(engine, autostart=False)
        job = executor.submit(Job("job-rc3", CorrectionTask(code="steane")))
        assert job.request_cancel(reason="shutdown") is True
        executor.start()
        with pytest.raises(JobCancelledError) as excinfo:
            job.result(timeout=60)
        assert excinfo.value.reason == "shutdown"
        terminal = list(job.events())[-1]
        assert type(terminal).__name__ == "JobCancelled"
        assert terminal.reason == "shutdown"
        executor.shutdown()
        engine.close()


class TestDeadlineExpiryReuse:
    def test_mid_walk_deadline_keeps_session_reusable(self):
        """Deadline expiry inside a distance walk must retire the job's
        guards and leave the shared per-code session able to finish the
        same task correctly on the next run."""
        task = DistanceTask(code="surface-5", max_trial=6)
        engine = Engine()
        job = engine.submit(task, deadline=0.01)
        with pytest.raises(JobCancelledError) as excinfo:
            job.result(timeout=300)
        assert excinfo.value.reason == "deadline"
        names = _event_names(job)
        assert [n for n in names if EVENT_TYPES[n].TERMINAL] == ["JobCancelled"]
        resumed = engine.run(task)
        assert resumed.verified
        assert resumed.details["distance"] == 5
        engine.close()
